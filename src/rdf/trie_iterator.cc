#include "rdf/trie_iterator.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace rps {

namespace {

// Key-only comparators between a run entry and a (k1, k2) probe (pos is
// ignored, so lower_bound lands on a group's head — its minimum
// position — and equal_range spans exactly the group).
struct KeyLess {
  bool operator()(const storage::RunEntry& e,
                  const std::pair<TermId, TermId>& k) const {
    return e.k1 != k.first ? e.k1 < k.first : e.k2 < k.second;
  }
  bool operator()(const std::pair<TermId, TermId>& k,
                  const storage::RunEntry& e) const {
    return k.first != e.k1 ? k.first < e.k1 : k.second < e.k2;
  }
};

}  // namespace

TrieJoinContext::TrieJoinContext(const Graph& graph, size_t epoch)
    : graph_(&graph) {
  // One shared lock for the whole intersection phase (engaged only in
  // concurrent mode). Everything below reads lock-free cores.
  lock_ = graph.ReaderLock();
  size_t now = graph.mapped_n_ + graph.triples_.size();
  epoch_ = std::min(epoch, now);
  mcap_ = static_cast<uint32_t>(std::min(epoch_, graph.mapped_n_));
  lepoch_ = epoch_ > graph.mapped_n_ ? epoch_ - graph.mapped_n_ : 0;
}

const std::vector<storage::RunEntry>& TrieJoinContext::Delta(int perm) const {
  std::optional<std::vector<storage::RunEntry>>& d = delta_[perm];
  if (!d.has_value()) {
    d.emplace();
    const Graph& g = *graph_;
    size_t end = std::min(lepoch_, g.triples_.size());
    if (end > g.base_n_) {
      d->reserve(end - g.base_n_);
      for (size_t pos = g.base_n_; pos < end; ++pos) {
        auto [k1, k2] = Graph::PermKey(static_cast<Graph::Permutation>(perm),
                                       g.triples_[pos]);
        d->push_back(
            storage::RunEntry{k1, k2, static_cast<uint32_t>(pos)});
      }
      // The tail is appended in insertion order, so sorting by (k1, k2)
      // with the stable position tie-break mirrors a merged run.
      std::sort(d->begin(), d->end(),
                [](const storage::RunEntry& a, const storage::RunEntry& b) {
                  if (a.k1 != b.k1) return a.k1 < b.k1;
                  if (a.k2 != b.k2) return a.k2 < b.k2;
                  return a.pos < b.pos;
                });
    }
  }
  return *d;
}

bool TrieJoinContext::TripleVisible(const Triple& t) const {
  const Graph& g = *graph_;
  auto it = g.pos_.find(t);
  if (it != g.pos_.end()) return it->second + g.mapped_n_ < epoch_;
  if (g.mapped_ != nullptr) {
    std::optional<uint32_t> at = g.mapped_->FindTriple(t);
    return at.has_value() && *at < mcap_;
  }
  return false;
}

bool TrieJoinContext::GroupVisible(int perm, TermId k1, TermId k2) const {
  const Graph& g = *graph_;
  if (mcap_ > 0) {
    storage::MappedSnapshot::GroupCursor cur(g.mapped_.get(), perm);
    cur.SeekKey(k1, k2);
    if (!cur.at_end() && cur.k1() == k1 && cur.k2() == k2 &&
        cur.head_pos() < mcap_) {
      return true;
    }
  }
  if (lepoch_ > 0) {
    auto [lo, hi] =
        g.BaseRange(static_cast<Graph::Permutation>(perm), k1, k2);
    if (lo < hi && g.perm_[perm][lo].pos < lepoch_) return true;
    const std::vector<storage::RunEntry>& d = Delta(perm);
    auto it = std::lower_bound(d.begin(), d.end(), std::make_pair(k1, k2),
                               KeyLess{});
    if (it != d.end() && it->k1 == k1 && it->k2 == k2) return true;
  }
  return false;
}

bool TrieJoinContext::TermVisible(int role, TermId term) const {
  const Graph& g = *graph_;
  if (mcap_ > 0) {
    bool vis = false;
    // Postings are position-ascending: the first one is the minimum.
    g.mapped_->ScanPostings(role, term, [&](uint32_t pos) {
      vis = pos < mcap_;
      return false;
    });
    if (vis) return true;
  }
  if (lepoch_ > 0) {
    const std::vector<uint32_t>* list =
        role == 0   ? g.Postings(g.by_s_, term)
        : role == 1 ? g.Postings(g.by_p_, term)
                    : g.Postings(g.by_o_, term);
    if (list != nullptr && !list->empty() && list->front() < lepoch_) {
      return true;
    }
  }
  return false;
}

size_t TrieJoinContext::CountGroup(int perm, TermId k1, TermId k2) const {
  const Graph& g = *graph_;
  size_t count = 0;
  if (mcap_ > 0) count += g.mapped_->CountRun(perm, k1, k2, mcap_);
  if (lepoch_ == 0) return count;
  auto [lo, hi] = g.BaseRange(static_cast<Graph::Permutation>(perm), k1, k2);
  const std::vector<Graph::PermEntry>& run = g.perm_[perm];
  if (lepoch_ >= g.base_n_) {
    count += hi - lo;
  } else {
    count += static_cast<size_t>(
        std::partition_point(run.begin() + lo, run.begin() + hi,
                             [this](const Graph::PermEntry& e) {
                               return e.pos < lepoch_;
                             }) -
        (run.begin() + lo));
  }
  const std::vector<storage::RunEntry>& d = Delta(perm);
  auto [dlo, dhi] = std::equal_range(d.begin(), d.end(),
                                     std::make_pair(k1, k2), KeyLess{});
  count += static_cast<size_t>(dhi - dlo);
  return count;
}

TrieIterator::TrieIterator(const TrieJoinContext& ctx, int perm)
    : ctx_(&ctx), perm_(perm), delta_(&ctx.Delta(perm)) {
  const Graph& g = *ctx.graph_;
  if (ctx.mcap_ > 0 && g.mapped_ != nullptr) {
    mapped_.emplace(g.mapped_.get(), perm);
  }
}

void TrieIterator::SeekMapped(TermId k1, TermId k2) {
  if (!mapped_.has_value()) return;
  mapped_->SeekKey(k1, k2);
  // Skip groups whose head position is past the mapped cap (only
  // reachable when the epoch falls inside the mapped prefix).
  while (!mapped_->at_end() && mapped_->head_pos() >= ctx_->mcap_) {
    mapped_->NextKey();
  }
}

void TrieIterator::SeekBase(TermId k1, TermId k2) {
  base_live_ = false;
  if (ctx_->lepoch_ == 0) return;
  const std::vector<Graph::PermEntry>& run = ctx_->graph_->perm_[perm_];
  auto key_less = [](const Graph::PermEntry& e,
                     const std::pair<TermId, TermId>& k) {
    return e.k1 != k.first ? e.k1 < k.first : e.k2 < k.second;
  };
  auto it = std::lower_bound(run.begin(), run.end(), std::make_pair(k1, k2),
                             key_less);
  // Group heads are minimum positions; skip groups born after the
  // epoch. With the epoch at or past the merged base (the common case)
  // the first head already qualifies.
  while (it != run.end() && it->pos >= ctx_->lepoch_) {
    std::pair<TermId, TermId> cur{it->k1, it->k2};
    it = std::upper_bound(it, run.end(), cur,
                          [](const std::pair<TermId, TermId>& k,
                             const Graph::PermEntry& e) {
                            return k.first != e.k1 ? k.first < e.k1
                                                   : k.second < e.k2;
                          });
  }
  if (it != run.end()) {
    bi_ = static_cast<size_t>(it - run.begin());
    base_live_ = true;
  }
}

void TrieIterator::SeekDelta(TermId k1, TermId k2) {
  delta_live_ = false;
  auto it = std::lower_bound(delta_->begin(), delta_->end(),
                             std::make_pair(k1, k2), KeyLess{});
  if (it != delta_->end()) {
    di_ = static_cast<size_t>(it - delta_->begin());
    delta_live_ = true;
  }
}

void TrieIterator::Refresh() {
  // Merged current group = minimum key among the live tiers. Several
  // tiers may hold the same key (a group split across tiers); the key
  // is reported once, which is all the group-level walk needs.
  at_end_ = true;
  bool have = false;
  TermId mk1 = 0, mk2 = 0;
  auto consider = [&](TermId a, TermId b) {
    if (!have || a < mk1 || (a == mk1 && b < mk2)) {
      mk1 = a;
      mk2 = b;
      have = true;
    }
  };
  if (mapped_.has_value() && !mapped_->at_end()) {
    consider(mapped_->k1(), mapped_->k2());
  }
  if (base_live_) {
    const Graph::PermEntry& e = ctx_->graph_->perm_[perm_][bi_];
    consider(e.k1, e.k2);
  }
  if (delta_live_) {
    const storage::RunEntry& e = (*delta_)[di_];
    consider(e.k1, e.k2);
  }
  if (have) {
    k1_ = mk1;
    k2_ = mk2;
    at_end_ = false;
  }
}

void TrieIterator::SeekGroup(TermId k1, TermId k2) {
  SeekMapped(k1, k2);
  SeekBase(k1, k2);
  SeekDelta(k1, k2);
  Refresh();
}

void TrieIterator::NextK1() {
  if (at_end_) return;
  if (k1_ == std::numeric_limits<TermId>::max()) {
    at_end_ = true;
    return;
  }
  SeekGroup(k1_ + 1, 0);
}

void TrieIterator::OpenK1(TermId k1) {
  if (opened_ && open_k1_ == k1) return;
  opened_ = true;
  open_k1_ = k1;
  blo_ = bhi_ = 0;
  if (ctx_->lepoch_ > 0) {
    const std::vector<Graph::PermEntry>& run = ctx_->graph_->perm_[perm_];
    auto lo = std::lower_bound(run.begin(), run.end(),
                               std::make_pair(k1, TermId{0}),
                               [](const Graph::PermEntry& e,
                                  const std::pair<TermId, TermId>& k) {
                                 return e.k1 != k.first ? e.k1 < k.first
                                                        : e.k2 < k.second;
                               });
    auto hi = std::upper_bound(lo, run.end(), k1,
                               [](TermId k, const Graph::PermEntry& e) {
                                 return k < e.k1;
                               });
    blo_ = static_cast<size_t>(lo - run.begin());
    bhi_ = static_cast<size_t>(hi - run.begin());
  }
  auto dlo = std::lower_bound(delta_->begin(), delta_->end(),
                              std::make_pair(k1, TermId{0}), KeyLess{});
  auto dhi = std::upper_bound(dlo, delta_->end(), k1,
                              [](TermId k, const storage::RunEntry& e) {
                                return k < e.k1;
                              });
  dlo_ = static_cast<size_t>(dlo - delta_->begin());
  dhi_ = static_cast<size_t>(dhi - delta_->begin());
}

void TrieIterator::SeekK2(TermId v) {
  at_end_ = true;
  bool have = false;
  TermId best = 0;
  // Mapped tier: the block index has no per-k1 window, so the seek stays
  // absolute; entries past the open k1 mean the tier is exhausted here.
  if (mapped_.has_value()) {
    mapped_->SeekKey(open_k1_, v);
    while (!mapped_->at_end() && mapped_->k1() == open_k1_ &&
           mapped_->head_pos() >= ctx_->mcap_) {
      mapped_->NextKey();
    }
    if (!mapped_->at_end() && mapped_->k1() == open_k1_) {
      best = mapped_->k2();
      have = true;
    }
  }
  // Base tier: search only the open subtree's window, skipping groups
  // whose head position was born at or past the epoch.
  if (bhi_ > blo_) {
    const std::vector<Graph::PermEntry>& run = ctx_->graph_->perm_[perm_];
    auto end = run.begin() + static_cast<ptrdiff_t>(bhi_);
    auto it = std::lower_bound(run.begin() + static_cast<ptrdiff_t>(blo_), end,
                               v, [](const Graph::PermEntry& e, TermId k) {
                                 return e.k2 < k;
                               });
    while (it != end && it->pos >= ctx_->lepoch_) {
      it = std::upper_bound(it, end, it->k2,
                            [](TermId k, const Graph::PermEntry& e) {
                              return k < e.k2;
                            });
    }
    if (it != end && (!have || it->k2 < best)) {
      best = it->k2;
      have = true;
    }
  }
  // Delta tier: pre-filtered to the epoch, every entry is visible.
  if (dhi_ > dlo_) {
    auto end = delta_->begin() + static_cast<ptrdiff_t>(dhi_);
    auto it = std::lower_bound(delta_->begin() + static_cast<ptrdiff_t>(dlo_),
                               end, v,
                               [](const storage::RunEntry& e, TermId k) {
                                 return e.k2 < k;
                               });
    if (it != end && (!have || it->k2 < best)) {
      best = it->k2;
      have = true;
    }
  }
  if (have) {
    k1_ = open_k1_;
    k2_ = best;
    at_end_ = false;
  }
}

}  // namespace rps
