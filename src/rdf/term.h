#ifndef RPS_RDF_TERM_H_
#define RPS_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace rps {

/// The three disjoint sets of RDF terms from the paper's formalization:
/// I (IRIs), B (blank nodes) and L (literals).
enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// Well-known IRIs used across the library.
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kLangString =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";

/// An RDF term: an IRI, a blank node, or a (possibly typed or
/// language-tagged) literal. Immutable value type.
///
/// Representation notes:
/// * for IRIs, `lexical()` is the IRI string (without angle brackets);
/// * for blank nodes, `lexical()` is the label (without the `_:` prefix);
/// * for literals, `lexical()` is the lexical form, `datatype()` the
///   datatype IRI (empty means xsd:string per RDF 1.1), and `lang()` the
///   language tag (non-empty implies datatype rdf:langString).
class Term {
 public:
  /// Builds an IRI term.
  static Term Iri(std::string iri);
  /// Builds a blank node with the given label.
  static Term Blank(std::string label);
  /// Builds a plain (xsd:string) literal.
  static Term Literal(std::string lexical);
  /// Builds a datatyped literal.
  static Term TypedLiteral(std::string lexical, std::string datatype);
  /// Builds a language-tagged literal.
  static Term LangLiteral(std::string lexical, std::string lang);

  Term() : kind_(TermKind::kIri) {}

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }

  const std::string& lexical() const { return lexical_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& lang() const { return lang_; }

  /// Renders the term in N-Triples syntax: `<iri>`, `_:label`,
  /// `"escaped"`, `"escaped"@lang` or `"escaped"^^<datatype>`.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.lang_ == b.lang_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Total order (kind, lexical, datatype, lang); used for deterministic
  /// output ordering.
  friend bool operator<(const Term& a, const Term& b);

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;  // literals only; empty = xsd:string
  std::string lang_;      // literals only
};

/// Hash functor for Term, suitable for unordered containers.
struct TermHash {
  size_t operator()(const Term& t) const;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace rps

#endif  // RPS_RDF_TERM_H_
