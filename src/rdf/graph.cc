#include "rdf/graph.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "storage/snapshot_reader.h"

namespace rps {

namespace {

// Hot-path instrumentation: pointers resolved once (the registry never
// invalidates them), one relaxed atomic add per call — not per triple.
obs::Counter& RangeScanCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.index.range_scans");
  return *c;
}
obs::Counter& DeltaScanCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.index.delta_scans");
  return *c;
}
obs::Counter& MergeCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.index.merges");
  return *c;
}
obs::Counter& ExactEstimateCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.index.exact_estimates");
  return *c;
}
obs::Counter& MappedReadCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("storage.mapped_reads");
  return *c;
}
obs::Counter& StatsLookupCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.stats.lookups");
  return *c;
}
obs::Counter& StatsScannedCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.stats.triples_scanned");
  return *c;
}
obs::Counter& StatsMappedRowCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("graph.stats.mapped_rows");
  return *c;
}

// A 2-bound probe whose shorter posting list is at most this long skips
// the binary search: filtering a handful of sequential positions is
// cheaper than two O(log n) probes, and the emission order is the same
// (posting lists are position-ascending and cover base + delta alike).
constexpr size_t kSmallPostingScan = 16;

}  // namespace

Graph::Graph(const Graph& other) : dict_(other.dict_) {
  std::lock_guard<std::mutex> terms_lock(other.terms_mu_);
  std::lock_guard<std::mutex> stats_lock(other.stats_mu_);
  triples_ = other.triples_;
  pos_ = other.pos_;
  terms_in_use_ = other.terms_in_use_;
  terms_scanned_ = other.terms_scanned_;
  pred_stats_ = other.pred_stats_;
  stats_scanned_ = other.stats_scanned_;
  stats_mapped_rows_ = other.stats_mapped_rows_;
  by_s_ = other.by_s_;
  by_p_ = other.by_p_;
  by_o_ = other.by_o_;
  for (int perm = 0; perm < kPermutations; ++perm) perm_[perm] = other.perm_[perm];
  base_n_ = other.base_n_;
  mapped_ = other.mapped_;  // snapshots are immutable: copies share one
  mapped_triples_ = other.mapped_triples_;
  mapped_n_ = other.mapped_n_;
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> terms_lock(other.terms_mu_);
  std::lock_guard<std::mutex> stats_lock(other.stats_mu_);
  dict_ = other.dict_;
  triples_ = other.triples_;
  pos_ = other.pos_;
  terms_in_use_ = other.terms_in_use_;
  terms_scanned_ = other.terms_scanned_;
  pred_stats_ = other.pred_stats_;
  stats_scanned_ = other.stats_scanned_;
  stats_mapped_rows_ = other.stats_mapped_rows_;
  by_s_ = other.by_s_;
  by_p_ = other.by_p_;
  by_o_ = other.by_o_;
  for (int perm = 0; perm < kPermutations; ++perm) perm_[perm] = other.perm_[perm];
  base_n_ = other.base_n_;
  mapped_ = other.mapped_;
  mapped_triples_ = other.mapped_triples_;
  mapped_n_ = other.mapped_n_;
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
  return *this;
}

Graph::Graph(Graph&& other) noexcept : dict_(other.dict_) {
  triples_ = std::move(other.triples_);
  pos_ = std::move(other.pos_);
  terms_in_use_ = std::move(other.terms_in_use_);
  terms_scanned_ = other.terms_scanned_;
  pred_stats_ = std::move(other.pred_stats_);
  stats_scanned_ = other.stats_scanned_;
  stats_mapped_rows_ = other.stats_mapped_rows_;
  by_s_ = std::move(other.by_s_);
  by_p_ = std::move(other.by_p_);
  by_o_ = std::move(other.by_o_);
  for (int perm = 0; perm < kPermutations; ++perm) {
    perm_[perm] = std::move(other.perm_[perm]);
  }
  base_n_ = other.base_n_;
  mapped_ = std::move(other.mapped_);
  mapped_triples_ = other.mapped_triples_;
  mapped_n_ = other.mapped_n_;
  other.mapped_triples_ = nullptr;
  other.mapped_n_ = 0;
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  dict_ = other.dict_;
  triples_ = std::move(other.triples_);
  pos_ = std::move(other.pos_);
  terms_in_use_ = std::move(other.terms_in_use_);
  terms_scanned_ = other.terms_scanned_;
  pred_stats_ = std::move(other.pred_stats_);
  stats_scanned_ = other.stats_scanned_;
  stats_mapped_rows_ = other.stats_mapped_rows_;
  by_s_ = std::move(other.by_s_);
  by_p_ = std::move(other.by_p_);
  by_o_ = std::move(other.by_o_);
  for (int perm = 0; perm < kPermutations; ++perm) {
    perm_[perm] = std::move(other.perm_[perm]);
  }
  base_n_ = other.base_n_;
  mapped_ = std::move(other.mapped_);
  mapped_triples_ = other.mapped_triples_;
  mapped_n_ = other.mapped_n_;
  other.mapped_triples_ = nullptr;
  other.mapped_n_ = 0;
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
  return *this;
}

void Graph::AttachMappedBase(
    std::shared_ptr<const storage::MappedSnapshot> snap) {
  auto lock = WriterLock();
  // Precondition (storage::LoadGraph enforces it with a real error):
  // attaching under existing triples would renumber every position.
  if (!triples_.empty() || mapped_n_ != 0 || snap == nullptr) return;
  mapped_triples_ = snap->triples();
  mapped_n_ = snap->num_triples();
  mapped_ = std::move(snap);
}

void Graph::EnableConcurrentMutation() {
  concurrent_.store(true, std::memory_order_release);
}

Result<bool> Graph::Insert(const Triple& t) {
  if (t.s == kInvalidTermId || t.p == kInvalidTermId ||
      t.o == kInvalidTermId) {
    return Status::InvalidArgument("triple contains an invalid term id");
  }
  if (dict_->IsLiteral(t.s)) {
    return Status::InvalidArgument(
        "triple subject must be an IRI or blank node, got literal " +
        dict_->ToString(t.s));
  }
  if (!dict_->IsIri(t.p)) {
    return Status::InvalidArgument("triple predicate must be an IRI, got " +
                                   dict_->ToString(t.p));
  }
  return InsertUnchecked(t);
}

Result<bool> Graph::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple{dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)});
}

bool Graph::InsertUnchecked(const Triple& t) {
  auto lock = WriterLock();
  return InsertUncheckedLocked(t);
}

bool Graph::InsertUncheckedLocked(const Triple& t) {
  // The mapped base is a read-only prefix: a triple already in the
  // snapshot is a duplicate, exactly as if it sat in pos_.
  if (mapped_ != nullptr && mapped_->FindTriple(t).has_value()) return false;
  uint32_t pos = static_cast<uint32_t>(triples_.size());
  auto [it, inserted] = pos_.try_emplace(t, pos);
  if (!inserted) return false;
  triples_.push_back(t);
  by_s_[t.s].push_back(pos);
  by_p_[t.p].push_back(pos);
  by_o_[t.o].push_back(pos);
  // Merge points depend only on the insertion sequence, which the chase
  // keeps deterministic (single-writer barriers), so the index state —
  // and with it every Match enumeration — is reproducible across runs
  // and thread counts.
  if (triples_.size() - base_n_ >= MergeThreshold()) MergeDelta();
  return true;
}

std::pair<TermId, TermId> Graph::PermKey(Permutation perm, const Triple& t) {
  switch (perm) {
    case kSpo:
      return {t.s, t.p};
    case kPos:
      return {t.p, t.o};
    default:
      return {t.o, t.s};
  }
}

void Graph::MergeDelta() {
  size_t n = triples_.size();
  for (int perm = 0; perm < kPermutations; ++perm) {
    std::vector<PermEntry>& run = perm_[perm];
    size_t old_size = run.size();
    // No reserve(n): an exact-size reserve would reallocate every merge;
    // push_back's geometric growth amortizes instead (Reserve() still
    // pre-sizes bulk loads).
    for (size_t pos = base_n_; pos < n; ++pos) {
      auto [k1, k2] = PermKey(static_cast<Permutation>(perm), triples_[pos]);
      run.push_back(PermEntry{k1, k2, static_cast<uint32_t>(pos)});
    }
    std::sort(run.begin() + old_size, run.end());
    // Tail positions all exceed base positions, so within one (k1, k2)
    // group the merge keeps base entries first — the range stays
    // position-ascending.
    std::inplace_merge(run.begin(), run.begin() + old_size, run.end());
  }
  base_n_ = n;
  MergeCounter().Increment();
}

void Graph::Reserve(size_t n) {
  auto lock = WriterLock();
  ReserveLocked(n);
}

void Graph::ReserveLocked(size_t n) {
  if (n <= triples_.capacity()) return;
  triples_.reserve(n);
  pos_.reserve(n);
  for (int perm = 0; perm < kPermutations; ++perm) perm_[perm].reserve(n);
}

size_t Graph::InsertAll(const Graph& other) {
  auto lock = WriterLock();
  ReserveLocked(triples_.size() + other.size());
  size_t added = 0;
  for (const Triple& t : other.triples()) {
    if (InsertUncheckedLocked(t)) ++added;
  }
  return added;
}

bool Graph::Contains(const Triple& t) const {
  if (pos_.count(t) > 0) return true;
  return mapped_ != nullptr && mapped_->FindTriple(t).has_value();
}

std::optional<uint32_t> Graph::PositionOf(const Triple& t) const {
  auto it = pos_.find(t);
  if (it != pos_.end()) {
    return static_cast<uint32_t>(it->second + mapped_n_);
  }
  if (mapped_ != nullptr) return mapped_->FindTriple(t);
  return std::nullopt;
}

size_t Graph::DistinctSubjects() const {
  return by_s_.size() + (mapped_ ? mapped_->distinct_subjects() : 0);
}
size_t Graph::DistinctPredicates() const {
  return by_p_.size() + (mapped_ ? mapped_->distinct_predicates() : 0);
}
size_t Graph::DistinctObjects() const {
  return by_o_.size() + (mapped_ ? mapped_->distinct_objects() : 0);
}

const std::vector<uint32_t>* Graph::Postings(
    const std::unordered_map<TermId, std::vector<uint32_t>>& index,
    TermId id) const {
  auto it = index.find(id);
  return it == index.end() ? nullptr : &it->second;
}

std::pair<size_t, size_t> Graph::BaseRange(Permutation perm, TermId k1,
                                           TermId k2) const {
  struct PrefixLess {
    bool operator()(const PermEntry& e, std::pair<TermId, TermId> k) const {
      return e.k1 != k.first ? e.k1 < k.first : e.k2 < k.second;
    }
    bool operator()(std::pair<TermId, TermId> k, const PermEntry& e) const {
      return k.first != e.k1 ? k.first < e.k1 : k.second < e.k2;
    }
  };
  const std::vector<PermEntry>& run = perm_[perm];
  auto [lo, hi] = std::equal_range(run.begin(), run.end(),
                                   std::make_pair(k1, k2), PrefixLess{});
  return {static_cast<size_t>(lo - run.begin()),
          static_cast<size_t>(hi - run.begin())};
}

namespace {

// Tail of a posting list holding positions >= base_n (the unmerged
// delta). Lists are position-ascending, so one back() probe rules out
// the common post-merge case before the binary search.
size_t TailStart(const std::vector<uint32_t>& list, size_t base_n) {
  if (list.back() < base_n) return list.size();
  return static_cast<size_t>(
      std::lower_bound(list.begin(), list.end(),
                       static_cast<uint32_t>(base_n)) -
      list.begin());
}

}  // namespace

void Graph::MatchRef(std::optional<TermId> s, std::optional<TermId> p,
                     std::optional<TermId> o,
                     FunctionRef<bool(const Triple&)> fn) const {
  MatchPrefix(s, p, o, size(), fn);
}

void Graph::MatchRefAsOf(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o, size_t epoch,
                         FunctionRef<bool(const Triple&)> fn) const {
  auto lock = ReaderLock();
  MatchPrefix(s, p, o, std::min(epoch, size()), fn);
}

// Epoch-bounded match core. Every branch enumerates candidate positions
// in ascending order, so the epoch bound is an early `break`: the
// emitted sequence is exactly what MatchRef would emit on the graph
// restricted to its first `epoch` triples, regardless of how many
// merges have happened since the epoch was captured (a merge only moves
// positions from the delta into the base runs, never reorders a
// (k1, k2) group's position-ascending entries).
void Graph::MatchPrefix(std::optional<TermId> s, std::optional<TermId> p,
                        std::optional<TermId> o, size_t epoch,
                        FunctionRef<bool(const Triple&)> fn) const {
  const int bound = (s.has_value() ? 1 : 0) + (p.has_value() ? 1 : 0) +
                    (o.has_value() ? 1 : 0);
  // Tier 1: the mapped snapshot serves global positions [0, mcap) from
  // its own on-disk runs/postings; the in-memory structures below index
  // *local* positions (global minus mapped_n_), so the epoch bound
  // splits into a mapped cap and a local epoch. Mapped positions all
  // precede local ones, so emitting mapped-then-local keeps the global
  // order ascending — byte-identical to an unmapped graph.
  const uint32_t mcap =
      static_cast<uint32_t>(std::min(epoch, mapped_n_));
  const size_t lepoch = epoch > mapped_n_ ? epoch - mapped_n_ : 0;
  if (bound == 0) {
    for (uint32_t i = 0; i < mcap; ++i) {
      if (!fn(mapped_triples_[i])) return;
    }
    // Fully unbound pattern: scan the prefix in insertion order.
    for (size_t i = 0; i < lepoch; ++i) {
      if (!fn(triples_[i])) return;
    }
    return;
  }
  if (bound == 3) {
    Triple probe{*s, *p, *o};
    if (mcap > 0) {
      // Insertion dedupes against the snapshot, so the probe lives in at
      // most one tier.
      std::optional<uint32_t> at = mapped_->FindTriple(probe);
      if (at.has_value()) {
        if (*at < mcap) fn(probe);
        return;
      }
    }
    auto it = pos_.find(probe);
    if (it != pos_.end() && it->second < lepoch) fn(probe);
    return;
  }
  if (bound == 1) {
    if (mcap > 0) {
      MappedReadCounter().Increment();
      const int role = s ? 0 : p ? 1 : 2;
      bool stopped = false;
      mapped_->ScanPostings(role, s ? *s : p ? *p : *o, [&](uint32_t pos) {
        if (pos >= mcap) return false;
        if (!fn(mapped_triples_[pos])) {
          stopped = true;
          return false;
        }
        return true;
      });
      if (stopped) return;
    }
    // A 1-bound pattern is its posting list: every listed triple matches
    // (no filtering) and positions are already insertion-ordered.
    const std::vector<uint32_t>* list =
        s ? Postings(by_s_, *s) : p ? Postings(by_p_, *p) : Postings(by_o_, *o);
    if (list == nullptr) return;
    RangeScanCounter().Increment();
    for (uint32_t pos : *list) {
      if (pos >= lepoch) break;
      if (!fn(triples_[pos])) return;
    }
    return;
  }

  // 2-bound: the probe's permutation and key.
  Permutation perm;
  TermId k1, k2;
  if (s && p) {
    perm = kSpo, k1 = *s, k2 = *p;
  } else if (p && o) {
    perm = kPos, k1 = *p, k2 = *o;
  } else {
    perm = kOsp, k1 = *o, k2 = *s;
  }

  if (mcap > 0) {
    // Tier 1: the snapshot's permuted run — entries of one (k1, k2)
    // group are position-ascending, exactly like a base range.
    MappedReadCounter().Increment();
    bool stopped = false;
    mapped_->ScanRun(perm, k1, k2, [&](uint32_t pos) {
      if (pos >= mcap) return false;
      if (!fn(mapped_triples_[pos])) {
        stopped = true;
        return false;
      }
      return true;
    });
    if (stopped) return;
  }

  // Tiers 2+3 (in-memory): both bound terms must occur at their position
  // in the tail (posting lists cover base + delta), else nothing more
  // matches.
  const std::vector<uint32_t>* first;
  const std::vector<uint32_t>* second;
  if (perm == kSpo) {
    first = Postings(by_s_, *s), second = Postings(by_p_, *p);
  } else if (perm == kPos) {
    first = Postings(by_p_, *p), second = Postings(by_o_, *o);
  } else {
    first = Postings(by_o_, *o), second = Postings(by_s_, *s);
  }
  if (first == nullptr || second == nullptr) return;
  RangeScanCounter().Increment();

  auto matches = [&](const Triple& t) {
    return (!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o);
  };

  const std::vector<uint32_t>* shorter =
      first->size() <= second->size() ? first : second;
  if (shorter->size() <= kSmallPostingScan) {
    for (uint32_t pos : *shorter) {
      if (pos >= lepoch) break;
      const Triple& t = triples_[pos];
      if (matches(t) && !fn(t)) return;
    }
    return;
  }

  // Base range: contiguous, position-ascending — every base position
  // precedes every delta position, so emitting range-then-tail is exactly
  // ascending insertion order.
  auto [lo, hi] = BaseRange(perm, k1, k2);
  const std::vector<PermEntry>& run = perm_[perm];
  for (size_t i = lo; i < hi; ++i) {
    if (run[i].pos >= lepoch) break;
    if (!fn(triples_[run[i].pos])) return;
  }
  if (base_n_ >= lepoch) return;          // prefix entirely inside the base
  if (base_n_ == triples_.size()) return;  // no unmerged delta
  size_t first_start = TailStart(*first, base_n_);
  size_t second_start = TailStart(*second, base_n_);
  const std::vector<uint32_t>* tail = first;
  size_t start = first_start;
  if (second->size() - second_start < first->size() - first_start) {
    tail = second;
    start = second_start;
  }
  if (start < tail->size() && (*tail)[start] < lepoch) {
    DeltaScanCounter().Increment();
    for (size_t i = start; i < tail->size(); ++i) {
      uint32_t pos = (*tail)[i];
      if (pos >= lepoch) break;
      const Triple& t = triples_[pos];
      if (matches(t) && !fn(t)) return;
    }
  }
}

std::unordered_set<TermId> Graph::TermsInUse() const {
  auto lock = ReaderLock();
  std::lock_guard<std::mutex> terms_lock(terms_mu_);
  // terms_scanned_ is a *global* high-water mark, so a graph with a
  // mapped base pays one lazy O(mapped) sweep on first use and O(new
  // triples) afterwards, same as before.
  const size_t n = mapped_n_ + triples_.size();
  for (; terms_scanned_ < n; ++terms_scanned_) {
    const Triple& t = TripleAt(terms_scanned_);
    terms_in_use_.insert(t.s);
    terms_in_use_.insert(t.p);
    terms_in_use_.insert(t.o);
  }
  return terms_in_use_;
}

Graph::PredDistinct Graph::PredicateDistincts(TermId pred) const {
  auto lock = ReaderLock();
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  const size_t n = mapped_n_ + triples_.size();
  if (stats_scanned_ < mapped_n_ && mapped_ != nullptr &&
      mapped_->has_pred_stats()) {
    // The snapshot carries exact per-predicate counts for the mapped
    // prefix, so it is never scanned: its row is added per lookup below.
    stats_scanned_ = mapped_n_;
    stats_mapped_rows_ = true;
  }
  if (stats_scanned_ < n) {
    StatsScannedCounter().Add(n - stats_scanned_);
    for (; stats_scanned_ < n; ++stats_scanned_) {
      const Triple& t = TripleAt(stats_scanned_);
      PredStatsCache& c = pred_stats_[t.p];
      c.subjects.insert(t.s);
      c.objects.insert(t.o);
    }
  }
  StatsLookupCounter().Increment();
  PredDistinct out;
  auto it = pred_stats_.find(pred);
  if (it != pred_stats_.end()) {
    out.subjects = it->second.subjects.size();
    out.objects = it->second.objects.size();
  }
  if (stats_mapped_rows_) {
    if (auto row = mapped_->PredStats(pred)) {
      StatsMappedRowCounter().Increment();
      out.subjects += row->distinct_s;  // tiers may share a term: upper bound
      out.objects += row->distinct_o;
    }
  }
  return out;
}

std::vector<Triple> Graph::MatchAll(std::optional<TermId> s,
                                    std::optional<TermId> p,
                                    std::optional<TermId> o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

std::vector<Triple> Graph::MatchAllAsOf(std::optional<TermId> s,
                                        std::optional<TermId> p,
                                        std::optional<TermId> o,
                                        size_t epoch) const {
  std::vector<Triple> out;
  auto collect = [&](const Triple& t) {
    out.push_back(t);
    return true;
  };
  MatchRefAsOf(s, p, o, epoch, FunctionRef<bool(const Triple&)>(collect));
  return out;
}

size_t Graph::SnapshotEpoch() const {
  auto lock = ReaderLock();
  return mapped_n_ + triples_.size();
}

bool Graph::ContainsAsOf(const Triple& t, size_t epoch) const {
  return PositionOfAsOf(t, epoch).has_value();
}

std::optional<uint32_t> Graph::PositionOfAsOf(const Triple& t,
                                              size_t epoch) const {
  auto lock = ReaderLock();
  auto it = pos_.find(t);
  if (it != pos_.end()) {
    uint32_t global = static_cast<uint32_t>(it->second + mapped_n_);
    if (global >= epoch) return std::nullopt;
    return global;
  }
  if (mapped_ != nullptr) {
    std::optional<uint32_t> at = mapped_->FindTriple(t);
    if (at.has_value() && *at < epoch) return at;
  }
  return std::nullopt;
}

size_t Graph::EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                              std::optional<TermId> o) const {
  return CountPrefix(s, p, o, mapped_n_ + triples_.size());
}

size_t Graph::EstimateMatchesAsOf(std::optional<TermId> s,
                                  std::optional<TermId> p,
                                  std::optional<TermId> o,
                                  size_t epoch) const {
  auto lock = ReaderLock();
  return CountPrefix(s, p, o, std::min(epoch, mapped_n_ + triples_.size()));
}

// Epoch-bounded exact count: the epoch bound is a partition_point over
// position-ascending sequences, so the count stays exact for all eight
// shapes (same guarantee EstimateMatches has always made).
size_t Graph::CountPrefix(std::optional<TermId> s, std::optional<TermId> p,
                          std::optional<TermId> o, size_t epoch) const {
  const int bound = (s.has_value() ? 1 : 0) + (p.has_value() ? 1 : 0) +
                    (o.has_value() ? 1 : 0);
  if (bound == 0) return epoch;
  // Mapped/in-memory split, as in MatchPrefix: the tiers cover disjoint
  // position ranges, so the exact count is the sum of both tiers' exact
  // counts.
  const uint32_t mcap =
      static_cast<uint32_t>(std::min(epoch, mapped_n_));
  const size_t lepoch = epoch > mapped_n_ ? epoch - mapped_n_ : 0;
  if (bound == 3) {
    Triple probe{*s, *p, *o};
    if (mcap > 0) {
      std::optional<uint32_t> at = mapped_->FindTriple(probe);
      if (at.has_value()) return *at < mcap ? 1 : 0;
    }
    auto it = pos_.find(probe);
    return (it != pos_.end() && it->second < lepoch) ? 1 : 0;
  }

  ExactEstimateCounter().Increment();
  // Number of entries of a position-ascending posting list below the
  // epoch: the whole list in the common no-ingest case (back() probe),
  // else one binary search.
  auto bounded_size = [lepoch](const std::vector<uint32_t>& list) -> size_t {
    if (list.empty() || list.back() < lepoch) return list.size();
    return static_cast<size_t>(
        std::lower_bound(list.begin(), list.end(),
                         static_cast<uint32_t>(lepoch)) -
        list.begin());
  };
  if (bound == 1) {
    size_t count = 0;
    if (mcap > 0) {
      MappedReadCounter().Increment();
      const int role = s ? 0 : p ? 1 : 2;
      count = mapped_->CountPostings(role, s ? *s : p ? *p : *o, mcap);
    }
    const std::vector<uint32_t>* list =
        s ? Postings(by_s_, *s) : p ? Postings(by_p_, *p) : Postings(by_o_, *o);
    return list == nullptr ? count : count + bounded_size(*list);
  }

  Permutation perm;
  TermId k1, k2;
  if (s && p) {
    perm = kSpo, k1 = *s, k2 = *p;
  } else if (p && o) {
    perm = kPos, k1 = *p, k2 = *o;
  } else {
    perm = kOsp, k1 = *o, k2 = *s;
  }
  size_t mapped_count = 0;
  if (mcap > 0) {
    MappedReadCounter().Increment();
    mapped_count = mapped_->CountRun(perm, k1, k2, mcap);
  }

  const std::vector<uint32_t>* first;
  const std::vector<uint32_t>* second;
  if (perm == kSpo) {
    first = Postings(by_s_, *s), second = Postings(by_p_, *p);
  } else if (perm == kPos) {
    first = Postings(by_p_, *p), second = Postings(by_o_, *o);
  } else {
    first = Postings(by_o_, *o), second = Postings(by_s_, *s);
  }
  if (first == nullptr || second == nullptr) return mapped_count;

  const std::vector<uint32_t>* shorter =
      first->size() <= second->size() ? first : second;
  if (shorter->size() <= kSmallPostingScan) {
    size_t count = mapped_count;
    for (uint32_t pos : *shorter) {
      if (pos >= lepoch) break;
      const Triple& t = triples_[pos];
      if ((!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o)) ++count;
    }
    return count;
  }

  auto [lo, hi] = BaseRange(perm, k1, k2);
  size_t count = mapped_count;
  if (lepoch >= base_n_) {
    count += hi - lo;
  } else {
    // Entries of a (k1, k2) group are position-ascending: the prefix
    // below the epoch is a partition point.
    const std::vector<PermEntry>& run = perm_[perm];
    count += static_cast<size_t>(
        std::partition_point(
            run.begin() + lo, run.begin() + hi,
            [lepoch](const PermEntry& e) { return e.pos < lepoch; }) -
        (run.begin() + lo));
  }
  if (base_n_ >= lepoch) return count;          // prefix inside the base
  if (base_n_ == triples_.size()) return count;  // no unmerged delta
  size_t first_start = TailStart(*first, base_n_);
  size_t second_start = TailStart(*second, base_n_);
  const std::vector<uint32_t>* tail = first;
  size_t start = first_start;
  if (second->size() - second_start < first->size() - first_start) {
    tail = second;
    start = second_start;
  }
  for (size_t i = start; i < tail->size(); ++i) {
    uint32_t pos = (*tail)[i];
    if (pos >= lepoch) break;
    const Triple& t = triples_[pos];
    if ((!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o)) ++count;
  }
  return count;
}

std::vector<Triple> GraphSnapshot::Triples() const {
  auto lock = graph_->ReaderLock();
  size_t n = std::min(epoch_, graph_->mapped_n_ + graph_->triples_.size());
  std::vector<Triple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(graph_->TripleAt(i));
  return out;
}

size_t GraphSnapshot::DistinctSubjects() const {
  auto lock = graph_->ReaderLock();
  return graph_->DistinctSubjects();
}

size_t GraphSnapshot::DistinctPredicates() const {
  auto lock = graph_->ReaderLock();
  return graph_->DistinctPredicates();
}

size_t GraphSnapshot::DistinctObjects() const {
  auto lock = graph_->ReaderLock();
  return graph_->DistinctObjects();
}

}  // namespace rps
