#include "rdf/graph.h"

#include <algorithm>
#include <limits>

namespace rps {

Result<bool> Graph::Insert(const Triple& t) {
  if (t.s == kInvalidTermId || t.p == kInvalidTermId ||
      t.o == kInvalidTermId) {
    return Status::InvalidArgument("triple contains an invalid term id");
  }
  if (dict_->IsLiteral(t.s)) {
    return Status::InvalidArgument(
        "triple subject must be an IRI or blank node, got literal " +
        dict_->ToString(t.s));
  }
  if (!dict_->IsIri(t.p)) {
    return Status::InvalidArgument("triple predicate must be an IRI, got " +
                                   dict_->ToString(t.p));
  }
  return InsertUnchecked(t);
}

Result<bool> Graph::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple{dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)});
}

bool Graph::InsertUnchecked(const Triple& t) {
  auto [it, inserted] = set_.insert(t);
  if (!inserted) return false;
  uint32_t pos = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  by_s_[t.s].push_back(pos);
  by_p_[t.p].push_back(pos);
  by_o_[t.o].push_back(pos);
  return true;
}

size_t Graph::InsertAll(const Graph& other) {
  size_t added = 0;
  for (const Triple& t : other.triples()) {
    if (InsertUnchecked(t)) ++added;
  }
  return added;
}

const std::vector<uint32_t>* Graph::Postings(
    const std::unordered_map<TermId, std::vector<uint32_t>>& index,
    TermId id) const {
  auto it = index.find(id);
  if (it == index.end()) return nullptr;
  return &it->second;
}

void Graph::Match(std::optional<TermId> s, std::optional<TermId> p,
                  std::optional<TermId> o,
                  const std::function<bool(const Triple&)>& fn) const {
  // Pick the most selective available posting list.
  const std::vector<uint32_t>* best = nullptr;
  size_t best_size = std::numeric_limits<size_t>::max();
  bool bound_position_empty = false;
  auto consider = [&](const std::unordered_map<TermId, std::vector<uint32_t>>&
                          index,
                      std::optional<TermId> key) {
    if (!key.has_value()) return;
    const std::vector<uint32_t>* postings = Postings(index, *key);
    if (postings == nullptr) {
      bound_position_empty = true;
      return;
    }
    if (postings->size() < best_size) {
      best = postings;
      best_size = postings->size();
    }
  };
  consider(by_s_, s);
  consider(by_p_, p);
  consider(by_o_, o);
  if (bound_position_empty) return;  // some bound term never occurs there

  auto matches = [&](const Triple& t) {
    return (!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o);
  };

  if (best != nullptr) {
    for (uint32_t pos : *best) {
      const Triple& t = triples_[pos];
      if (matches(t) && !fn(t)) return;
    }
    return;
  }
  // Fully unbound pattern: scan everything.
  for (const Triple& t : triples_) {
    if (!fn(t)) return;
  }
}

std::vector<Triple> Graph::MatchAll(std::optional<TermId> s,
                                    std::optional<TermId> p,
                                    std::optional<TermId> o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t Graph::EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                              std::optional<TermId> o) const {
  size_t best = triples_.size();
  auto consider = [&](const std::unordered_map<TermId, std::vector<uint32_t>>&
                          index,
                      std::optional<TermId> key) {
    if (!key.has_value()) return;
    const std::vector<uint32_t>* postings = Postings(index, *key);
    size_t n = postings == nullptr ? 0 : postings->size();
    best = std::min(best, n);
  };
  consider(by_s_, s);
  consider(by_p_, p);
  consider(by_o_, o);
  return best;
}

std::unordered_set<TermId> Graph::TermsInUse() const {
  std::unordered_set<TermId> out;
  for (const Triple& t : triples_) {
    out.insert(t.s);
    out.insert(t.p);
    out.insert(t.o);
  }
  return out;
}

}  // namespace rps
