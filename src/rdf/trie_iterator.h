#ifndef RPS_RDF_TRIE_ITERATOR_H_
#define RPS_RDF_TRIE_ITERATOR_H_

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "rdf/graph.h"
#include "storage/snapshot_reader.h"

namespace rps {

/// The trie view of the permuted indexes that the worst-case-optimal
/// join operator (query/plan.cc, PlanOp::kWcojJoin) walks.
///
/// Each permuted run — SPO (s, p), POS (p, o), OSP (o, s) — is already
/// a two-level trie: level 1 is the distinct k1 values, level 2 the
/// distinct k2 values within one k1. A run spans up to three
/// position-disjoint tiers (docs/PERSISTENCE.md):
///
///   mapped snapshot blocks  <  merged in-memory base  <  LSM delta tail
///
/// TrieIterator merges the three per-tier cursors into one sorted walk
/// over the *distinct (k1, k2) groups* of a run, with leapfrog-style
/// `SeekGroup(k1, k2)` (galloping: binary search over the sorted base
/// run, the mapped fixed-width block index, and the per-query sorted
/// delta run — no bucket is ever materialized). A group is visible at
/// the context's epoch iff its head (minimum) insertion position is
/// below the epoch; invisible groups are skipped transparently, so the
/// walk is exactly the run of the graph "as of" the epoch.
///
/// TrieJoinContext pins everything one join needs: the epoch split into
/// the mapped cap and the local epoch, the per-permutation delta runs
/// (sorted once per query from the unmerged tail, pre-filtered to the
/// epoch), and — in concurrent mode — ONE shared lock held for the
/// whole intersection phase. Every probe below is a lock-free core
/// (never a locking Graph/GraphSnapshot entry point), because taking
/// the graph's shared lock twice from one thread is undefined. The
/// context is single-threaded by design: the intersection phase of one
/// query runs on one thread; concurrent queries each build their own.
class TrieJoinContext {
 public:
  /// Captures `graph` at `epoch` (clamped to the current size) and, in
  /// concurrent mode, acquires the shared lock — the graph cannot merge
  /// or grow under the iterators. Do not call locking Graph read
  /// methods (MatchRefAsOf, SnapshotEpoch, GraphSnapshot::*) on the
  /// same thread while a context is alive in concurrent mode.
  TrieJoinContext(const Graph& graph, size_t epoch);

  TrieJoinContext(const TrieJoinContext&) = delete;
  TrieJoinContext& operator=(const TrieJoinContext&) = delete;

  size_t epoch() const { return epoch_; }
  const Graph& graph() const { return *graph_; }

  /// Fully bound probe: is `t` in the graph at the epoch?
  bool TripleVisible(const Triple& t) const;

  /// 2-bound probe: does the (k1, k2) group of permutation `perm`
  /// (0 = SPO, 1 = POS, 2 = OSP) contain a position below the epoch?
  bool GroupVisible(int perm, TermId k1, TermId k2) const;

  /// 1-bound probe: does `term` occur at position role `role` (0 = s,
  /// 1 = p, 2 = o) below the epoch?
  bool TermVisible(int role, TermId term) const;

  /// Exact number of matches of the 2-bound pattern at the epoch
  /// (mapped + base + delta), for leapfrog stream-size estimates.
  size_t CountGroup(int perm, TermId k1, TermId k2) const;

 private:
  friend class TrieIterator;

  // The delta tier of one permutation: the unmerged tail re-keyed and
  // sorted by (k1, k2, pos), pre-filtered to positions < the epoch so
  // every delta group is visible by construction. Built lazily, once
  // per permutation per query. Positions are local (in-memory) ones.
  const std::vector<storage::RunEntry>& Delta(int perm) const;

  const Graph* graph_;
  size_t epoch_;        // global (mapped + local) position bound
  uint32_t mcap_;       // min(epoch, mapped size): cap for mapped tier
  size_t lepoch_;       // epoch - mapped size: cap for in-memory tiers
  std::shared_lock<std::shared_mutex> lock_;  // engaged in concurrent mode
  mutable std::optional<std::vector<storage::RunEntry>> delta_[3];
};

/// A merged three-tier cursor over the distinct visible (k1, k2) groups
/// of one permuted run, ordered by (k1, k2). The WCOJ operator drives
/// it in two shapes:
///
///  * level-1 walk (unbound predecessor): distinct k1 values, via
///    `SeekK1(v)` / `k1()` — leapfrogging a variable that keys the run.
///  * level-2 walk (bound predecessor): distinct k2 values within a
///    fixed k1, via `SeekGroup(c, v)` + checking `k1() == c`.
///
/// Seeks are O(log n) per tier (binary search over the base run and
/// block index, <= 2 mapped block decodes) regardless of group sizes.
class TrieIterator {
 public:
  TrieIterator(const TrieJoinContext& ctx, int perm);

  /// Positions at the first *visible* group with key >= (k1, k2).
  void SeekGroup(TermId k1, TermId k2);

  /// Positions at the first visible group with k1 >= v.
  void SeekK1(TermId v) { SeekGroup(v, 0); }

  /// Advances to the first visible group with k1 > the current k1.
  void NextK1();

  /// Descends into the level-2 subtree of `k1`: computes the base and
  /// delta subranges of that k1 once, so each subsequent SeekK2 binary-
  /// searches only inside them (O(log |subtree|) instead of O(log
  /// |run|)). Re-opening the k1 already open is a no-op, so a stream
  /// whose k1 is a query constant pays the subrange computation once for
  /// the whole join. Resets the level-2 walk to the subtree start.
  void OpenK1(TermId k1);

  /// Positions at the first visible k2 >= v inside the subtree opened by
  /// OpenK1; at_end() reports subtree exhaustion (k1() keeps reporting
  /// the open k1 while positioned).
  void SeekK2(TermId v);

  bool at_end() const { return at_end_; }
  TermId k1() const { return k1_; }
  TermId k2() const { return k2_; }

 private:
  // Per-tier repositioning to the first visible group with key >=
  // (k1, k2); each leaves the tier either at such a group or exhausted.
  void SeekMapped(TermId k1, TermId k2);
  void SeekBase(TermId k1, TermId k2);
  void SeekDelta(TermId k1, TermId k2);
  // Recomputes the merged current key (min over live tiers).
  void Refresh();

  const TrieJoinContext* ctx_;
  int perm_;
  bool at_end_ = true;
  TermId k1_ = 0;
  TermId k2_ = 0;

  std::optional<storage::MappedSnapshot::GroupCursor> mapped_;
  const std::vector<storage::RunEntry>* delta_;  // pre-filtered, sorted
  size_t di_ = 0;                                // current delta group head
  size_t bi_ = 0;                                // current base group head
  bool base_live_ = false;
  bool delta_live_ = false;

  // OpenK1 subtree window: [blo_, bhi_) into the base run and
  // [dlo_, dhi_) into the delta run, valid while opened_.
  bool opened_ = false;
  TermId open_k1_ = 0;
  size_t blo_ = 0, bhi_ = 0;
  size_t dlo_ = 0, dhi_ = 0;
};

}  // namespace rps

#endif  // RPS_RDF_TRIE_ITERATOR_H_
