#include "rdf/dictionary.h"

namespace rps {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

TermId Dictionary::NewBlank() {
  // Skip over labels that happen to be taken by parsed data.
  while (true) {
    Term candidate = Term::Blank("n" + std::to_string(next_null_));
    ++next_null_;
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

}  // namespace rps
