#include "rdf/dictionary.h"

namespace rps {

Dictionary::Dictionary(Dictionary&& other) noexcept
    : terms_(std::move(other.terms_)),
      index_(std::move(other.index_)),
      next_null_(other.next_null_) {
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  terms_ = std::move(other.terms_);
  index_ = std::move(other.index_);
  next_null_ = other.next_null_;
  concurrent_.store(other.concurrent_.load(std::memory_order_acquire),
                    std::memory_order_release);
  return *this;
}

TermId Dictionary::Intern(const Term& term) {
  auto lock = WriterLock();
  return InternLocked(term);
}

TermId Dictionary::InternLocked(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto lock = ReaderLock();
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

TermId Dictionary::NewBlank() {
  auto lock = WriterLock();
  // Skip over labels that happen to be taken by parsed data.
  while (true) {
    Term candidate = Term::Blank("n" + std::to_string(next_null_));
    ++next_null_;
    if (index_.find(candidate) == index_.end()) {
      return InternLocked(candidate);
    }
  }
}

}  // namespace rps
