#include "rdf/dataset.h"

namespace rps {

Graph& Dataset::GetOrCreate(const std::string& name) {
  auto it = graphs_.find(name);
  if (it != graphs_.end()) return it->second;
  auto [pos, _] = graphs_.emplace(name, Graph(dict_));
  return pos->second;
}

const Graph* Dataset::Find(const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return nullptr;
  return &it->second;
}

Graph* Dataset::Find(const std::string& name) {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return nullptr;
  return &it->second;
}

Graph Dataset::Merged() const {
  Graph merged(dict_);
  merged.Reserve(TotalTriples());
  for (const auto& [name, graph] : graphs_) {
    merged.InsertAll(graph);
  }
  return merged;
}

size_t Dataset::TotalTriples() const {
  size_t n = 0;
  for (const auto& [name, graph] : graphs_) {
    n += graph.size();
  }
  return n;
}

}  // namespace rps
