#ifndef RPS_RDF_DATASET_H_
#define RPS_RDF_DATASET_H_

#include <map>
#include <string>

#include "rdf/graph.h"

namespace rps {

/// A collection of named RDF graphs sharing one Dictionary. In an RPS
/// setting each named graph holds the stored database `d` of one peer; the
/// union of all of them is the stored database `D` of the system (§2.3).
class Dataset {
 public:
  explicit Dataset(Dictionary* dict) : dict_(dict) {}

  /// Returns the graph with the given name, creating it if absent.
  Graph& GetOrCreate(const std::string& name);

  /// Returns the graph with the given name, or nullptr.
  const Graph* Find(const std::string& name) const;
  Graph* Find(const std::string& name);

  /// All named graphs (ordered by name, for deterministic iteration).
  const std::map<std::string, Graph>& graphs() const { return graphs_; }

  /// Union of all named graphs — the stored database D of the RPS.
  Graph Merged() const;

  /// Total number of triples across all graphs (an upper bound on the size
  /// of the merged graph, since peers may share triples).
  size_t TotalTriples() const;

  Dictionary* dict() const { return dict_; }

 private:
  Dictionary* dict_;
  std::map<std::string, Graph> graphs_;
};

}  // namespace rps

#endif  // RPS_RDF_DATASET_H_
