#include "rdf/term.h"

#include <ostream>
#include <tuple>

#include "util/string_util.h"

namespace rps {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  if (datatype != kXsdString) {
    t.datatype_ = std::move(datatype);
  }
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.lang_ = std::move(lang);
  return t;
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlank:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

bool operator<(const Term& a, const Term& b) {
  return std::tie(a.kind_, a.lexical_, a.datatype_, a.lang_) <
         std::tie(b.kind_, b.lexical_, b.datatype_, b.lang_);
}

size_t TermHash::operator()(const Term& t) const {
  size_t h = std::hash<std::string>()(t.lexical());
  h = h * 1099511628211ULL ^ static_cast<size_t>(t.kind());
  if (t.is_literal()) {
    h = h * 1099511628211ULL ^ std::hash<std::string>()(t.datatype());
    h = h * 1099511628211ULL ^ std::hash<std::string>()(t.lang());
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace rps
