#ifndef RPS_RDF_TRIPLE_H_
#define RPS_RDF_TRIPLE_H_

#include <cstdint>
#include <functional>

#include "rdf/dictionary.h"

namespace rps {

/// A dictionary-encoded RDF triple (s, p, o). Validity constraints from the
/// paper ((s,p,o) ∈ (I∪B) × I × (I∪B∪L)) are enforced at insertion time by
/// Graph::Insert, not by this passive struct.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator!=(const Triple& a, const Triple& b) {
    return !(a == b);
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t h = t.s;
    h = h * 1099511628211ULL ^ t.p;
    h = h * 1099511628211ULL ^ t.o;
    return h;
  }
};

}  // namespace rps

#endif  // RPS_RDF_TRIPLE_H_
