#ifndef RPS_RDF_DICTIONARY_H_
#define RPS_RDF_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "rdf/term.h"

namespace rps {

/// Dense integer handle for an interned Term. Ids are assigned in
/// interning order starting from 0 and are stable for the lifetime of the
/// Dictionary.
using TermId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Dictionary encoding of RDF terms: maps each distinct Term to a dense
/// TermId and back. All graphs, patterns and mappings in one RPS share a
/// single Dictionary so that TermIds are comparable across peers.
///
/// Also the factory for *fresh* blank nodes, which the chase uses as
/// labelled nulls (§3 of the paper): NewBlank() mints labels that cannot
/// collide with parsed blank labels.
///
/// Like Graph, the dictionary has an opt-in concurrent mode for live
/// serving (docs/ARCHITECTURE.md "Concurrency & snapshots"): after
/// EnableConcurrentMutation(), Intern/NewBlank serialize behind an
/// exclusive lock and every lookup takes a shared lock, so queries that
/// render or intern terms can overlap ingest. Interned terms live in a
/// deque, so a `const Term&` returned by term() stays valid across
/// concurrent interning (no reallocation moves elements). Outside
/// concurrent mode every operation is lock-free, exactly as before.
class Dictionary {
 public:
  Dictionary() = default;

  // Dictionaries are shared by reference; copying one is almost always a
  // bug (ids would silently diverge), so forbid it. Moves are
  // user-defined because of the lock member (never move a dictionary
  // other threads are using).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Interns `term`, returning its id (existing or fresh).
  TermId Intern(const Term& term);

  /// Convenience interning helpers.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternBlank(std::string label) {
    return Intern(Term::Blank(std::move(label)));
  }
  TermId InternLiteral(std::string lexical) {
    return Intern(Term::Literal(std::move(lexical)));
  }

  /// Returns the id of `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// Returns the term for a valid id. Id must come from this dictionary.
  /// The reference stays valid for the dictionary's lifetime, including
  /// across concurrent Intern calls (deque storage never relocates).
  const Term& term(TermId id) const {
    auto lock = ReaderLock();
    return terms_[id];
  }

  /// True if `id` denotes a blank node (i.e., an element of B, including
  /// labelled nulls created by the chase).
  bool IsBlank(TermId id) const {
    auto lock = ReaderLock();
    return terms_[id].is_blank();
  }
  bool IsIri(TermId id) const {
    auto lock = ReaderLock();
    return terms_[id].is_iri();
  }
  bool IsLiteral(TermId id) const {
    auto lock = ReaderLock();
    return terms_[id].is_literal();
  }

  /// Mints a fresh blank node (labelled null) with a unique label of the
  /// form `n<counter>`. Guaranteed not to collide with previously interned
  /// blanks (the counter skips taken labels).
  TermId NewBlank();

  /// Number of interned terms. Valid ids are [0, size).
  size_t size() const {
    auto lock = ReaderLock();
    return terms_.size();
  }

  /// The fresh-blank counter behind NewBlank(). Persisted in snapshot
  /// headers so a restored peer keeps minting non-colliding null labels.
  uint64_t null_counter() const {
    auto lock = ReaderLock();
    return next_null_;
  }

  /// Raises the fresh-blank counter to at least `value` (snapshot load);
  /// never lowers it.
  void RestoreNullCounter(uint64_t value) {
    auto lock = WriterLock();
    if (value > next_null_) next_null_ = value;
  }

  /// Renders `id` in N-Triples syntax.
  std::string ToString(TermId id) const {
    auto lock = ReaderLock();
    return terms_[id].ToString();
  }

  /// Switches the dictionary into concurrent mode (see class comment).
  /// One-way and idempotent.
  void EnableConcurrentMutation() {
    concurrent_.store(true, std::memory_order_release);
  }
  bool concurrent_mutation() const {
    return concurrent_.load(std::memory_order_acquire);
  }

 private:
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    return concurrent_.load(std::memory_order_acquire)
               ? std::shared_lock<std::shared_mutex>(mu_)
               : std::shared_lock<std::shared_mutex>();
  }
  std::unique_lock<std::shared_mutex> WriterLock() {
    return concurrent_.load(std::memory_order_acquire)
               ? std::unique_lock<std::shared_mutex>(mu_)
               : std::unique_lock<std::shared_mutex>();
  }

  // Caller holds the writer lock in concurrent mode.
  TermId InternLocked(const Term& term);

  // Deque, not vector: ids keep indexing O(1) while `const Term&`
  // references survive concurrent growth (no element relocation).
  std::deque<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
  uint64_t next_null_ = 0;

  std::atomic<bool> concurrent_{false};
  mutable std::shared_mutex mu_;
};

}  // namespace rps

#endif  // RPS_RDF_DICTIONARY_H_
