#ifndef RPS_RDF_DICTIONARY_H_
#define RPS_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace rps {

/// Dense integer handle for an interned Term. Ids are assigned in
/// interning order starting from 0 and are stable for the lifetime of the
/// Dictionary.
using TermId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Dictionary encoding of RDF terms: maps each distinct Term to a dense
/// TermId and back. All graphs, patterns and mappings in one RPS share a
/// single Dictionary so that TermIds are comparable across peers.
///
/// Also the factory for *fresh* blank nodes, which the chase uses as
/// labelled nulls (§3 of the paper): NewBlank() mints labels that cannot
/// collide with parsed blank labels.
class Dictionary {
 public:
  Dictionary() = default;

  // Dictionaries are shared by reference; copying one is almost always a
  // bug (ids would silently diverge), so forbid it.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `term`, returning its id (existing or fresh).
  TermId Intern(const Term& term);

  /// Convenience interning helpers.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternBlank(std::string label) {
    return Intern(Term::Blank(std::move(label)));
  }
  TermId InternLiteral(std::string lexical) {
    return Intern(Term::Literal(std::move(lexical)));
  }

  /// Returns the id of `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// Returns the term for a valid id. Id must come from this dictionary.
  const Term& term(TermId id) const { return terms_[id]; }

  /// True if `id` denotes a blank node (i.e., an element of B, including
  /// labelled nulls created by the chase).
  bool IsBlank(TermId id) const { return terms_[id].is_blank(); }
  bool IsIri(TermId id) const { return terms_[id].is_iri(); }
  bool IsLiteral(TermId id) const { return terms_[id].is_literal(); }

  /// Mints a fresh blank node (labelled null) with a unique label of the
  /// form `n<counter>`. Guaranteed not to collide with previously interned
  /// blanks (the counter skips taken labels).
  TermId NewBlank();

  /// Number of interned terms. Valid ids are [0, size).
  size_t size() const { return terms_.size(); }

  /// Renders `id` in N-Triples syntax.
  std::string ToString(TermId id) const { return terms_[id].ToString(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
  uint64_t next_null_ = 0;
};

}  // namespace rps

#endif  // RPS_RDF_DICTIONARY_H_
