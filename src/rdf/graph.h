#ifndef RPS_RDF_GRAPH_H_
#define RPS_RDF_GRAPH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"
#include "util/result.h"

namespace rps {

/// An in-memory RDF graph (a set of dictionary-encoded triples) with
/// per-position inverted indexes for pattern matching.
///
/// The graph borrows its Dictionary (non-owning): all graphs participating
/// in one RPS share a dictionary so TermIds are comparable across peers.
///
/// Insertion validates the RDF typing constraint of the paper:
/// (s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L).
class Graph {
 public:
  explicit Graph(Dictionary* dict) : dict_(dict) {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Inserts a triple after validating term kinds. Returns true if the
  /// triple was new, false if it was already present; error status if the
  /// triple violates the RDF typing constraint.
  Result<bool> Insert(const Triple& t);

  /// Inserts without kind validation (used on hot paths where the caller
  /// guarantees validity, e.g. the chase copying existing triples).
  /// Returns true if the triple was new.
  bool InsertUnchecked(const Triple& t);

  /// Convenience: interns the three terms and inserts.
  Result<bool> Insert(const Term& s, const Term& p, const Term& o);

  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples in insertion order. Stable across Match calls.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Inserts every triple of `other` (which must share this dictionary).
  /// Returns the number of newly added triples.
  size_t InsertAll(const Graph& other);

  /// Matches a triple pattern where std::nullopt is a wildcard. Invokes
  /// `fn` for every matching triple; if `fn` returns false, matching stops
  /// early.
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<bool(const Triple&)>& fn) const;

  /// Collects all matches of the pattern.
  std::vector<Triple> MatchAll(std::optional<TermId> s,
                               std::optional<TermId> p,
                               std::optional<TermId> o) const;

  /// Upper bound on the number of matches for the pattern; used by the
  /// query evaluator to order joins most-selective-first.
  size_t EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o) const;

  /// The set of term ids that occur in some triple of this graph, at any
  /// position. Computed on demand.
  std::unordered_set<TermId> TermsInUse() const;

  Dictionary* dict() const { return dict_; }

 private:
  // Returns the index posting list for the given position/term, or nullptr.
  const std::vector<uint32_t>* Postings(
      const std::unordered_map<TermId, std::vector<uint32_t>>& index,
      TermId id) const;

  Dictionary* dict_;
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_s_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_p_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_o_;
};

}  // namespace rps

#endif  // RPS_RDF_GRAPH_H_
