#ifndef RPS_RDF_GRAPH_H_
#define RPS_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"
#include "util/function_ref.h"
#include "util/result.h"

namespace rps {

namespace storage {
class MappedSnapshot;
}  // namespace storage

class GraphSnapshot;

/// A random-access, insertion-ordered view of a graph's triples. The
/// graph may serve its prefix from a memory-mapped snapshot (the mapped
/// base) and the rest from its in-memory tail, so the view spans up to
/// two contiguous segments; for a purely in-memory graph it is just the
/// triples vector. Converts implicitly to `std::vector<Triple>` (a
/// copy) for callers that need a materialized container.
///
/// The view borrows the graph and is invalidated by mutation, exactly
/// like the `const std::vector<Triple>&` accessor it replaces.
class TriplesView {
 public:
  TriplesView(const Triple* mapped, size_t mapped_n,
              const std::vector<Triple>* tail)
      : mapped_(mapped), mapped_n_(mapped_n), tail_(tail) {}

  size_t size() const { return mapped_n_ + tail_->size(); }
  bool empty() const { return size() == 0; }

  const Triple& operator[](size_t i) const {
    return i < mapped_n_ ? mapped_[i] : (*tail_)[i - mapped_n_];
  }
  const Triple& front() const { return (*this)[0]; }
  const Triple& back() const { return (*this)[size() - 1]; }

  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Triple*;
    using reference = const Triple&;

    iterator() : view_(nullptr), i_(0) {}
    iterator(const TriplesView* view, size_t i) : view_(view), i_(i) {}

    reference operator*() const { return (*view_)[i_]; }
    pointer operator->() const { return &(*view_)[i_]; }
    reference operator[](difference_type d) const { return (*view_)[i_ + d]; }

    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type d) { i_ += d; return *this; }
    iterator& operator-=(difference_type d) { i_ -= d; return *this; }
    friend iterator operator+(iterator it, difference_type d) {
      return it += d;
    }
    friend iterator operator+(difference_type d, iterator it) {
      return it += d;
    }
    friend iterator operator-(iterator it, difference_type d) {
      return it -= d;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.i_ != b.i_;
    }
    friend bool operator<(const iterator& a, const iterator& b) {
      return a.i_ < b.i_;
    }
    friend bool operator<=(const iterator& a, const iterator& b) {
      return a.i_ <= b.i_;
    }
    friend bool operator>(const iterator& a, const iterator& b) {
      return a.i_ > b.i_;
    }
    friend bool operator>=(const iterator& a, const iterator& b) {
      return a.i_ >= b.i_;
    }

   private:
    const TriplesView* view_;
    size_t i_;
  };
  using const_iterator = iterator;

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size()); }

  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for the old
  // vector accessor in copy-initialization contexts.
  operator std::vector<Triple>() const {
    std::vector<Triple> out;
    out.reserve(size());
    out.insert(out.end(), begin(), end());
    return out;
  }

 private:
  const Triple* mapped_;
  size_t mapped_n_;
  const std::vector<Triple>* tail_;
};

/// An in-memory RDF graph (a set of dictionary-encoded triples) with
/// RDF-3X-style permuted sorted indexes for pattern matching.
///
/// Storage layout (docs/ARCHITECTURE.md "Storage & indexing"):
///
///  - `triples_` holds every triple in insertion order (the public
///    `triples()` view, stable across Match calls).
///  - One posting list per position (`by_s_`, `by_p_`, `by_o_`) maps a
///    term to the ascending insertion positions where it occurs. A
///    1-bound pattern *is* its posting list: emitted verbatim, no
///    filtering, and its exact cardinality is the list length.
///  - Three sorted permutation runs — SPO, POS, OSP — cover the 2-bound
///    shapes. Each run holds (key1, key2, position) entries for the first
///    `base_n_` triples, sorted lexicographically, so a 2-bound pattern
///    is a binary-searched contiguous range:
///        (s p ?) -> SPO    (? p o) -> POS    (s ? o) -> OSP
///    Within one (key1, key2) group entries are ordered by position.
///  - Triples inserted since the last merge (positions >= `base_n_`) form
///    an append-only LSM-style delta. A 2-bound match unions its base
///    range with a filtered scan of the delta *tail* of the shorter
///    applicable posting list. When the delta outgrows a threshold
///    proportional to the base, the runs absorb it (amortized O(n log n)
///    total merge work over any insertion sequence).
///  - A fully bound probe is one hash lookup; a fully unbound pattern
///    scans `triples_`.
///  - Optionally, a memory-mapped snapshot (docs/PERSISTENCE.md) sits
///    *under* all of the above as the graph's first `mapped_size()`
///    insertion positions: its on-disk permuted runs and posting lists
///    answer the same probes for that prefix, and the in-memory
///    structures hold only what was inserted after the load. Every read
///    path visits mapped tier, then merged base, then delta — all three
///    position-ascending — so attaching a snapshot changes where bytes
///    live, never what any Match emits.
///
/// Every path emits matches in ascending insertion position (base range
/// entries are position-sorted within a key group and all precede the
/// delta tail). That order is (a) independent of merge timing and thread
/// count and (b) identical to the historical posting-list engine, so
/// everything downstream — chase firing order, fresh blank numbering,
/// certain answers — is byte-identical to the pre-index engine.
///
/// Snapshot reads (docs/ARCHITECTURE.md "Concurrency & snapshots"): the
/// graph is append-only, so "the graph as of epoch E" is exactly its
/// first E triples. The `...AsOf(..., epoch)` read methods enumerate and
/// count only positions < epoch — every enumeration path above is
/// position-ascending, so the bound is an early break, not a filter pass
/// — and merges never invalidate the view (a merge only moves positions
/// between the delta and the base runs). `GraphSnapshot` packages a
/// (graph, epoch) pair behind the plain Match/EstimateMatches interface.
///
/// By default the graph is single-writer/single-phase like the chase
/// needs, and reads are lock-free. `EnableConcurrentMutation()` switches
/// it into concurrent mode for live serving: mutators take an exclusive
/// lock and the `...AsOf` snapshot reads take a shared lock, so queries
/// can overlap ingest safely (TSan-clean). The legacy lock-free read
/// paths (Match/Contains/triples()/...) remain lock-free even then and
/// must not race a writer — concurrent readers go through snapshots.
///
/// The graph borrows its Dictionary (non-owning): all graphs participating
/// in one RPS share a dictionary so TermIds are comparable across peers.
///
/// Insertion validates the RDF typing constraint of the paper:
/// (s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L).
class Graph {
 public:
  explicit Graph(Dictionary* dict) : dict_(dict) {}

  // Copy/move are user-defined because of the synchronization members
  // (mutexes are not copyable); they transfer the data and the
  // concurrent-mode flag but each graph owns a fresh lock. Copying or
  // moving a graph that another thread is concurrently reading or
  // writing is undefined, as for any standard container.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Inserts a triple after validating term kinds. Returns true if the
  /// triple was new, false if it was already present; error status if the
  /// triple violates the RDF typing constraint.
  Result<bool> Insert(const Triple& t);

  /// Inserts without kind validation (used on hot paths where the caller
  /// guarantees validity, e.g. the chase copying existing triples).
  /// Returns true if the triple was new.
  bool InsertUnchecked(const Triple& t);

  /// Convenience: interns the three terms and inserts.
  Result<bool> Insert(const Term& s, const Term& p, const Term& o);

  bool Contains(const Triple& t) const;

  /// Insertion position of `t` — its index in `triples()` — or nullopt
  /// when absent. One hash probe (plus a mapped-base index probe when a
  /// snapshot is attached); the query planner uses it to restore the
  /// canonical (probe-engine) emission order after out-of-order merge
  /// joins.
  std::optional<uint32_t> PositionOf(const Triple& t) const;

  size_t size() const { return mapped_n_ + triples_.size(); }
  bool empty() const { return size() == 0; }

  /// All triples in insertion order. Stable across Match calls.
  const TriplesView triples() const {
    return TriplesView(mapped_triples_, mapped_n_, &triples_);
  }

  /// The triple at insertion position `pos` (mapped base or in-memory
  /// tail). `pos` must be < size().
  const Triple& TripleAt(size_t pos) const {
    return pos < mapped_n_ ? mapped_triples_[pos]
                           : triples_[pos - mapped_n_];
  }

  // ---- Mapped base (persistence) -------------------------------------

  /// Adopts a memory-mapped snapshot as this graph's base tier: the
  /// snapshot's triples occupy insertion positions [0, mapped_size())
  /// and are served straight from the mapping (its permuted runs and
  /// posting lists play the role the in-memory base runs play for
  /// merged triples); everything inserted afterwards lands in the
  /// ordinary in-memory structures on top. The graph must be empty and
  /// the snapshot's term ids must already be valid in this graph's
  /// dictionary — storage::LoadGraph (src/storage/storage.h) is the
  /// checked entry point that guarantees both.
  void AttachMappedBase(std::shared_ptr<const storage::MappedSnapshot> snap);

  /// True when a snapshot is attached as the base tier.
  bool has_mapped_base() const { return mapped_n_ > 0; }

  /// Number of triples served from the mapped snapshot (a prefix of the
  /// insertion order).
  size_t mapped_size() const { return mapped_n_; }

  /// Pre-sizes the containers for `n` total triples. Call before bulk
  /// insertion (InsertAll, the chase's copy-existing-triples seed) to
  /// avoid incremental rehashing and vector growth.
  void Reserve(size_t n);

  /// Inserts every triple of `other` (which must share this dictionary).
  /// Returns the number of newly added triples.
  size_t InsertAll(const Graph& other);

  /// Matches a triple pattern where std::nullopt is a wildcard. Invokes
  /// `fn` for every matching triple in insertion order; if `fn` returns
  /// false, matching stops early.
  ///
  /// The callback is passed by lightweight FunctionRef: lambdas bind with
  /// no allocation and a single indirect call per match.
  void MatchRef(std::optional<TermId> s, std::optional<TermId> p,
                std::optional<TermId> o,
                FunctionRef<bool(const Triple&)> fn) const;

  template <typename Fn,
            std::enable_if_t<std::is_invocable_r_v<bool, Fn&, const Triple&>,
                             int> = 0>
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o, Fn&& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  /// Thin ABI-stable overload for callers that hold a std::function.
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<bool(const Triple&)>& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  /// Collects all matches of the pattern, in insertion order.
  std::vector<Triple> MatchAll(std::optional<TermId> s,
                               std::optional<TermId> p,
                               std::optional<TermId> o) const;

  /// The *exact* number of matches for the pattern, for all eight
  /// bound/unbound shapes: posting-list length (1-bound), permutation
  /// range width plus a bounded delta count (2-bound), hash membership
  /// (3-bound). Used by the query evaluator, the chase's OrderPatterns
  /// and the federator to order joins most-selective-first.
  size_t EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o) const;

  // ---- Snapshot reads ------------------------------------------------
  //
  // Each takes the epoch (exclusive insertion-position bound) captured at
  // query start and behaves exactly like its unsuffixed counterpart
  // evaluated on the graph's first `epoch` triples. In concurrent mode
  // they hold a shared lock for the duration of the call (including the
  // Match callback — do not insert into the same graph from inside one).

  /// The current epoch: the number of triples inserted so far. In
  /// concurrent mode this is read under the shared lock, so it is a safe
  /// linearization point for starting a query mid-ingest.
  size_t SnapshotEpoch() const;

  /// True once EnableConcurrentMutation() has been called.
  bool concurrent_mutation() const {
    return concurrent_.load(std::memory_order_acquire);
  }

  /// Switches the graph into concurrent mode: from now on mutators
  /// serialize behind an exclusive lock and the `...AsOf` reads take a
  /// shared lock. One-way (there is no safe point to observe "no readers
  /// left" from inside the graph) and idempotent. Enable *after*
  /// single-threaded bulk loading / chasing, *before* serving overlapped
  /// queries and ingest.
  void EnableConcurrentMutation();

  /// Match restricted to insertion positions < epoch, in ascending
  /// insertion order (early-exit on false like MatchRef).
  void MatchRefAsOf(std::optional<TermId> s, std::optional<TermId> p,
                    std::optional<TermId> o, size_t epoch,
                    FunctionRef<bool(const Triple&)> fn) const;

  /// MatchAll restricted to insertion positions < epoch.
  std::vector<Triple> MatchAllAsOf(std::optional<TermId> s,
                                   std::optional<TermId> p,
                                   std::optional<TermId> o,
                                   size_t epoch) const;

  /// Exact match count among insertion positions < epoch (all eight
  /// shapes, same exactness guarantee as EstimateMatches).
  size_t EstimateMatchesAsOf(std::optional<TermId> s, std::optional<TermId> p,
                             std::optional<TermId> o, size_t epoch) const;

  /// Membership / position among the first `epoch` triples.
  bool ContainsAsOf(const Triple& t, size_t epoch) const;
  std::optional<uint32_t> PositionOfAsOf(const Triple& t, size_t epoch) const;

  /// The set of term ids that occur in some triple of this graph, at any
  /// position. Maintained incrementally behind a high-water mark guarded
  /// by its own mutex: a call scans only the triples appended since the
  /// previous call (graphs never shrink), so it is O(new triples) instead
  /// of a full rescan and costs inserts nothing. Returns a copy so the
  /// result cannot be mutated under a caller by a later call; safe to
  /// call from any number of threads.
  std::unordered_set<TermId> TermsInUse() const;

  /// Index introspection (tests, benches): triples covered by sorted
  /// permutation runs (mapped snapshot + merged in-memory base) vs.
  /// still in the append-only delta.
  size_t base_size() const { return mapped_n_ + base_n_; }
  size_t delta_size() const { return triples_.size() - base_n_; }

  /// Number of distinct terms occurring at each position. O(1); the
  /// query planner's cost model uses them as graph-wide distinct-value
  /// upper bounds for join selectivity. With a mapped base attached the
  /// counts are the sum of the snapshot's and the in-memory tail's
  /// per-position index sizes — an upper bound (a term occurring in
  /// both tiers counts twice), which can only steer operator choice,
  /// never answers.
  size_t DistinctSubjects() const;
  size_t DistinctPredicates() const;
  size_t DistinctObjects() const;

  /// Per-predicate distinct-value statistics: upper bounds on the number
  /// of distinct subjects / objects occurring with `pred`. Zero for a
  /// predicate that never occurs. Maintained incrementally behind a
  /// high-water mark like TermsInUse — a call folds in only the triples
  /// appended since the previous call, so inserts pay nothing. With a
  /// mapped base whose snapshot carries the statistics section, the
  /// mapped prefix is never scanned: its on-disk row is added to the
  /// in-memory tail's exact count (an upper bound — a subject occurring
  /// in both tiers counts twice). Planner statistics only: they steer
  /// join-order and operator choice under hub skew, never answers.
  struct PredDistinct {
    size_t subjects = 0;
    size_t objects = 0;
  };
  PredDistinct PredicateDistincts(TermId pred) const;

  Dictionary* dict() const { return dict_; }

 private:
  friend class GraphSnapshot;
  // The WCOJ trie module (rdf/trie_iterator.h) walks the permuted runs
  // and probes the visibility cores directly under one shared lock.
  friend class TrieJoinContext;
  friend class TrieIterator;

  // One entry of a permutation run: the two leading permuted components
  // plus the insertion position (which doubles as the tie-break, so a
  // (k1, k2) range is position-ascending). The third component is not
  // needed: fully bound probes use the hash set.
  struct PermEntry {
    TermId k1;
    TermId k2;
    uint32_t pos;

    friend bool operator<(const PermEntry& a, const PermEntry& b) {
      if (a.k1 != b.k1) return a.k1 < b.k1;
      if (a.k2 != b.k2) return a.k2 < b.k2;
      return a.pos < b.pos;
    }
  };

  // The three permutations; kPermutations is the array size of `perm_`.
  enum Permutation { kSpo = 0, kPos = 1, kOsp = 2, kPermutations = 3 };

  // Delta below this size is never merged — on tiny graphs the filtered
  // posting-list path is already exact and binary search gains nothing,
  // while a low floor would make small insert bursts pay a merge every
  // few dozen triples.
  static constexpr size_t kMinMergeDelta = 256;

  // Merge trigger: keeps the delta a bounded fraction of the base while
  // amortizing total merge work to O(n log n) over any insertion
  // sequence.
  size_t MergeThreshold() const {
    size_t proportional = base_n_ / 4;
    return proportional > kMinMergeDelta ? proportional : kMinMergeDelta;
  }

  // The (k1, k2) key of triple `t` under a permutation.
  static std::pair<TermId, TermId> PermKey(Permutation perm, const Triple& t);

  // Conditional locks: engaged only in concurrent mode, so the historical
  // single-phase paths stay lock-free (one relaxed-ish atomic load).
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    return concurrent_.load(std::memory_order_acquire)
               ? std::shared_lock<std::shared_mutex>(mu_)
               : std::shared_lock<std::shared_mutex>();
  }
  std::unique_lock<std::shared_mutex> WriterLock() {
    return concurrent_.load(std::memory_order_acquire)
               ? std::unique_lock<std::shared_mutex>(mu_)
               : std::unique_lock<std::shared_mutex>();
  }

  // Insert/reserve cores; caller holds the writer lock in concurrent mode.
  bool InsertUncheckedLocked(const Triple& t);
  void ReserveLocked(size_t n);

  // Epoch-bounded read cores (no locking; caller holds the reader lock
  // in concurrent mode). `epoch` must be <= triples_.size().
  void MatchPrefix(std::optional<TermId> s, std::optional<TermId> p,
                   std::optional<TermId> o, size_t epoch,
                   FunctionRef<bool(const Triple&)> fn) const;
  size_t CountPrefix(std::optional<TermId> s, std::optional<TermId> p,
                     std::optional<TermId> o, size_t epoch) const;

  // Sorts the pending delta positions and merges them into the three
  // permutation runs.
  void MergeDelta();

  // Half-open range [lo, hi) of perm_[perm] whose (k1, k2) equals the
  // probe.
  std::pair<size_t, size_t> BaseRange(Permutation perm, TermId k1,
                                      TermId k2) const;

  // Returns the posting list for the given position index/term, or
  // nullptr.
  const std::vector<uint32_t>* Postings(
      const std::unordered_map<TermId, std::vector<uint32_t>>& index,
      TermId id) const;

  Dictionary* dict_;
  std::vector<Triple> triples_;
  // Membership hash doubling as the triple -> insertion position index
  // behind PositionOf.
  std::unordered_map<Triple, uint32_t, TripleHash> pos_;

  // Lazily filled cache behind TermsInUse(); terms_scanned_ is the
  // high-water mark of triples already folded in. Guarded by terms_mu_
  // (acquired after the reader lock, never the other way around).
  mutable std::mutex terms_mu_;
  mutable std::unordered_set<TermId> terms_in_use_;
  mutable size_t terms_scanned_ = 0;

  // Lazily filled per-predicate distinct sets behind
  // PredicateDistincts(); stats_scanned_ is the high-water mark of
  // triples folded in, and stats_mapped_rows_ records that the mapped
  // prefix is served from the snapshot's statistics section instead of
  // being scanned. Guarded by stats_mu_ (same ordering rule as
  // terms_mu_: acquired after the reader lock only).
  struct PredStatsCache {
    std::unordered_set<TermId> subjects;
    std::unordered_set<TermId> objects;
  };
  mutable std::mutex stats_mu_;
  mutable std::unordered_map<TermId, PredStatsCache> pred_stats_;
  mutable size_t stats_scanned_ = 0;
  mutable bool stats_mapped_rows_ = false;

  // Full single-position posting lists (ascending insertion positions).
  std::unordered_map<TermId, std::vector<uint32_t>> by_s_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_p_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_o_;

  // Sorted permutation runs over triples_[0 .. base_n_).
  std::vector<PermEntry> perm_[kPermutations];
  size_t base_n_ = 0;

  // Optional memory-mapped base tier (AttachMappedBase): the snapshot's
  // triples occupy global insertion positions [0, mapped_n_); every
  // in-memory structure above indexes *local* positions, i.e. global
  // minus mapped_n_. mapped_triples_ caches the snapshot's triple array
  // so TripleAt stays a branch and a load.
  std::shared_ptr<const storage::MappedSnapshot> mapped_;
  const Triple* mapped_triples_ = nullptr;
  size_t mapped_n_ = 0;

  // Concurrent mode: flag + the lock the conditional helpers use.
  std::atomic<bool> concurrent_{false};
  mutable std::shared_mutex mu_;
};

/// A frozen logical read view of a Graph: the graph's first `epoch()`
/// triples, captured at construction. Because the graph is append-only
/// and every enumeration path is position-ascending, the view is
/// *exactly* the graph as it was at capture time — later appends and
/// LSM merges never change what a snapshot returns, so an in-flight
/// query keeps seeing one consistent database state (snapshot
/// isolation) while ingest proceeds.
///
/// The snapshot is a cheap value type (pointer + epoch) and borrows the
/// graph, which must outlive it. It converts *implicitly* from `const
/// Graph&` — read-path APIs take `const GraphSnapshot&` and existing
/// callers that pass a Graph keep compiling, getting a "now" snapshot
/// per call. Concurrent servers construct one snapshot per query
/// explicitly and evaluate every pattern of that query against it.
///
/// In concurrent mode every snapshot read holds the graph's shared lock
/// for the duration of the call; otherwise reads are lock-free.
class GraphSnapshot {
 public:
  /// Captures the graph's current epoch (implicit by design — see above).
  GraphSnapshot(const Graph& graph)  // NOLINT(google-explicit-constructor)
      : graph_(&graph), epoch_(graph.SnapshotEpoch()) {}

  /// A view of the first `epoch` triples (clamped to the current size).
  GraphSnapshot(const Graph& graph, size_t epoch)
      : graph_(&graph), epoch_(epoch) {
    size_t now = graph.SnapshotEpoch();
    if (epoch_ > now) epoch_ = now;
  }

  const Graph& graph() const { return *graph_; }
  size_t epoch() const { return epoch_; }

  size_t size() const { return epoch_; }
  bool empty() const { return epoch_ == 0; }
  Dictionary* dict() const { return graph_->dict(); }

  bool Contains(const Triple& t) const {
    return graph_->ContainsAsOf(t, epoch_);
  }
  std::optional<uint32_t> PositionOf(const Triple& t) const {
    return graph_->PositionOfAsOf(t, epoch_);
  }

  void MatchRef(std::optional<TermId> s, std::optional<TermId> p,
                std::optional<TermId> o,
                FunctionRef<bool(const Triple&)> fn) const {
    graph_->MatchRefAsOf(s, p, o, epoch_, fn);
  }

  template <typename Fn,
            std::enable_if_t<std::is_invocable_r_v<bool, Fn&, const Triple&>,
                             int> = 0>
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o, Fn&& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<bool(const Triple&)>& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  std::vector<Triple> MatchAll(std::optional<TermId> s,
                               std::optional<TermId> p,
                               std::optional<TermId> o) const {
    return graph_->MatchAllAsOf(s, p, o, epoch_);
  }

  size_t EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o) const {
    return graph_->EstimateMatchesAsOf(s, p, o, epoch_);
  }

  /// A copy of the snapshot's triples in insertion order (the first
  /// `epoch()` triples). Copies under the shared lock in concurrent
  /// mode — parity checks and tests use it; not a hot path.
  std::vector<Triple> Triples() const;

  /// Planner statistics: distinct-value counts per position. These are
  /// read from the live posting indexes (upper bounds for the snapshot —
  /// the counts only grow), which can only steer operator choice, never
  /// answers: execution restores the canonical probe order regardless.
  size_t DistinctSubjects() const;
  size_t DistinctPredicates() const;
  size_t DistinctObjects() const;

  /// Per-predicate distinct upper bounds (Graph::PredicateDistincts,
  /// which takes its own locks — safe to call on a live graph).
  Graph::PredDistinct PredicateDistincts(TermId pred) const {
    return graph_->PredicateDistincts(pred);
  }

 private:
  const Graph* graph_;
  size_t epoch_;
};

}  // namespace rps

#endif  // RPS_RDF_GRAPH_H_
