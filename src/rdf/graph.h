#ifndef RPS_RDF_GRAPH_H_
#define RPS_RDF_GRAPH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"
#include "util/function_ref.h"
#include "util/result.h"

namespace rps {

/// An in-memory RDF graph (a set of dictionary-encoded triples) with
/// RDF-3X-style permuted sorted indexes for pattern matching.
///
/// Storage layout (docs/ARCHITECTURE.md "Storage & indexing"):
///
///  - `triples_` holds every triple in insertion order (the public
///    `triples()` view, stable across Match calls).
///  - One posting list per position (`by_s_`, `by_p_`, `by_o_`) maps a
///    term to the ascending insertion positions where it occurs. A
///    1-bound pattern *is* its posting list: emitted verbatim, no
///    filtering, and its exact cardinality is the list length.
///  - Three sorted permutation runs — SPO, POS, OSP — cover the 2-bound
///    shapes. Each run holds (key1, key2, position) entries for the first
///    `base_n_` triples, sorted lexicographically, so a 2-bound pattern
///    is a binary-searched contiguous range:
///        (s p ?) -> SPO    (? p o) -> POS    (s ? o) -> OSP
///    Within one (key1, key2) group entries are ordered by position.
///  - Triples inserted since the last merge (positions >= `base_n_`) form
///    an append-only LSM-style delta. A 2-bound match unions its base
///    range with a filtered scan of the delta *tail* of the shorter
///    applicable posting list. When the delta outgrows a threshold
///    proportional to the base, the runs absorb it (amortized O(n log n)
///    total merge work over any insertion sequence).
///  - A fully bound probe is one hash lookup; a fully unbound pattern
///    scans `triples_`.
///
/// Every path emits matches in ascending insertion position (base range
/// entries are position-sorted within a key group and all precede the
/// delta tail). That order is (a) independent of merge timing and thread
/// count and (b) identical to the historical posting-list engine, so
/// everything downstream — chase firing order, fresh blank numbering,
/// certain answers — is byte-identical to the pre-index engine.
///
/// The graph borrows its Dictionary (non-owning): all graphs participating
/// in one RPS share a dictionary so TermIds are comparable across peers.
///
/// Insertion validates the RDF typing constraint of the paper:
/// (s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L).
class Graph {
 public:
  explicit Graph(Dictionary* dict) : dict_(dict) {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Inserts a triple after validating term kinds. Returns true if the
  /// triple was new, false if it was already present; error status if the
  /// triple violates the RDF typing constraint.
  Result<bool> Insert(const Triple& t);

  /// Inserts without kind validation (used on hot paths where the caller
  /// guarantees validity, e.g. the chase copying existing triples).
  /// Returns true if the triple was new.
  bool InsertUnchecked(const Triple& t);

  /// Convenience: interns the three terms and inserts.
  Result<bool> Insert(const Term& s, const Term& p, const Term& o);

  bool Contains(const Triple& t) const { return pos_.count(t) > 0; }

  /// Insertion position of `t` — its index in `triples()` — or nullopt
  /// when absent. One hash probe; the query planner uses it to restore
  /// the canonical (probe-engine) emission order after out-of-order
  /// merge joins.
  std::optional<uint32_t> PositionOf(const Triple& t) const {
    auto it = pos_.find(t);
    if (it == pos_.end()) return std::nullopt;
    return it->second;
  }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples in insertion order. Stable across Match calls.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Pre-sizes the containers for `n` total triples. Call before bulk
  /// insertion (InsertAll, the chase's copy-existing-triples seed) to
  /// avoid incremental rehashing and vector growth.
  void Reserve(size_t n);

  /// Inserts every triple of `other` (which must share this dictionary).
  /// Returns the number of newly added triples.
  size_t InsertAll(const Graph& other);

  /// Matches a triple pattern where std::nullopt is a wildcard. Invokes
  /// `fn` for every matching triple in insertion order; if `fn` returns
  /// false, matching stops early.
  ///
  /// The callback is passed by lightweight FunctionRef: lambdas bind with
  /// no allocation and a single indirect call per match.
  void MatchRef(std::optional<TermId> s, std::optional<TermId> p,
                std::optional<TermId> o,
                FunctionRef<bool(const Triple&)> fn) const;

  template <typename Fn,
            std::enable_if_t<std::is_invocable_r_v<bool, Fn&, const Triple&>,
                             int> = 0>
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o, Fn&& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  /// Thin ABI-stable overload for callers that hold a std::function.
  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<bool(const Triple&)>& fn) const {
    MatchRef(s, p, o, FunctionRef<bool(const Triple&)>(fn));
  }

  /// Collects all matches of the pattern, in insertion order.
  std::vector<Triple> MatchAll(std::optional<TermId> s,
                               std::optional<TermId> p,
                               std::optional<TermId> o) const;

  /// The *exact* number of matches for the pattern, for all eight
  /// bound/unbound shapes: posting-list length (1-bound), permutation
  /// range width plus a bounded delta count (2-bound), hash membership
  /// (3-bound). Used by the query evaluator, the chase's OrderPatterns
  /// and the federator to order joins most-selective-first.
  size_t EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o) const;

  /// The set of term ids that occur in some triple of this graph, at any
  /// position. Maintained incrementally behind a high-water mark: a call
  /// scans only the triples appended since the previous call (graphs
  /// never shrink), so it is O(new triples) instead of a full rescan and
  /// costs inserts nothing. Not safe to call concurrently with itself;
  /// callers use it at system-construction/translation time, outside the
  /// parallel chase phases.
  const std::unordered_set<TermId>& TermsInUse() const;

  /// Index introspection (tests, benches): triples covered by the sorted
  /// permutation runs vs. still in the append-only delta.
  size_t base_size() const { return base_n_; }
  size_t delta_size() const { return triples_.size() - base_n_; }

  /// Number of distinct terms occurring at each position (the sizes of
  /// the per-position posting indexes). O(1); the query planner's cost
  /// model uses them as graph-wide distinct-value upper bounds for join
  /// selectivity.
  size_t DistinctSubjects() const { return by_s_.size(); }
  size_t DistinctPredicates() const { return by_p_.size(); }
  size_t DistinctObjects() const { return by_o_.size(); }

  Dictionary* dict() const { return dict_; }

 private:
  // One entry of a permutation run: the two leading permuted components
  // plus the insertion position (which doubles as the tie-break, so a
  // (k1, k2) range is position-ascending). The third component is not
  // needed: fully bound probes use the hash set.
  struct PermEntry {
    TermId k1;
    TermId k2;
    uint32_t pos;

    friend bool operator<(const PermEntry& a, const PermEntry& b) {
      if (a.k1 != b.k1) return a.k1 < b.k1;
      if (a.k2 != b.k2) return a.k2 < b.k2;
      return a.pos < b.pos;
    }
  };

  // The three permutations; kPermutations is the array size of `perm_`.
  enum Permutation { kSpo = 0, kPos = 1, kOsp = 2, kPermutations = 3 };

  // Delta below this size is never merged — on tiny graphs the filtered
  // posting-list path is already exact and binary search gains nothing,
  // while a low floor would make small insert bursts pay a merge every
  // few dozen triples.
  static constexpr size_t kMinMergeDelta = 256;

  // Merge trigger: keeps the delta a bounded fraction of the base while
  // amortizing total merge work to O(n log n) over any insertion
  // sequence.
  size_t MergeThreshold() const {
    size_t proportional = base_n_ / 4;
    return proportional > kMinMergeDelta ? proportional : kMinMergeDelta;
  }

  // The (k1, k2) key of triple `t` under a permutation.
  static std::pair<TermId, TermId> PermKey(Permutation perm, const Triple& t);

  // Sorts the pending delta positions and merges them into the three
  // permutation runs.
  void MergeDelta();

  // Half-open range [lo, hi) of perm_[perm] whose (k1, k2) equals the
  // probe.
  std::pair<size_t, size_t> BaseRange(Permutation perm, TermId k1,
                                      TermId k2) const;

  // Returns the posting list for the given position index/term, or
  // nullptr.
  const std::vector<uint32_t>* Postings(
      const std::unordered_map<TermId, std::vector<uint32_t>>& index,
      TermId id) const;

  Dictionary* dict_;
  std::vector<Triple> triples_;
  // Membership hash doubling as the triple -> insertion position index
  // behind PositionOf.
  std::unordered_map<Triple, uint32_t, TripleHash> pos_;

  // Lazily filled cache behind TermsInUse(); terms_scanned_ is the
  // high-water mark of triples already folded in.
  mutable std::unordered_set<TermId> terms_in_use_;
  mutable size_t terms_scanned_ = 0;

  // Full single-position posting lists (ascending insertion positions).
  std::unordered_map<TermId, std::vector<uint32_t>> by_s_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_p_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_o_;

  // Sorted permutation runs over triples_[0 .. base_n_).
  std::vector<PermEntry> perm_[kPermutations];
  size_t base_n_ = 0;
};

}  // namespace rps

#endif  // RPS_RDF_GRAPH_H_
