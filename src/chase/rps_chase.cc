#include "chase/rps_chase.h"

#include <functional>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

// Flushes the run's statistics into the global metrics registry on scope
// exit, so budget-aborted runs (which return an error Status and discard
// their RpsChaseStats) still report the work they did. The termination
// counters chase.term.{fixpoint,budget_exhausted} record Algorithm 1's
// exit reason.
class ChaseMetricsFlusher {
 public:
  explicit ChaseMetricsFlusher(const RpsChaseStats* stats) : stats_(stats) {}
  ChaseMetricsFlusher(const ChaseMetricsFlusher&) = delete;
  ChaseMetricsFlusher& operator=(const ChaseMetricsFlusher&) = delete;
  ~ChaseMetricsFlusher() {
    obs::Registry& reg = obs::Registry::Global();
    reg.counter("chase.runs")->Increment();
    reg.counter("chase.rounds")->Add(stats_->rounds);
    reg.counter("chase.triples_added")->Add(stats_->triples_added);
    reg.counter("chase.nulls_created")->Add(stats_->blanks_created);
    reg.counter("chase.gma_firings")->Add(stats_->gma_firings);
    reg.counter("chase.eq_triples")->Add(stats_->eq_triples);
    reg.counter(stats_->completed ? "chase.term.fixpoint"
                                  : "chase.term.budget_exhausted")
        ->Increment();
  }

 private:
  const RpsChaseStats* stats_;
};

// Per-mapping firing counter: chase.gma_firings{<label>}.
obs::Counter* GmaFiringCounter(const GraphMappingAssertion& gma) {
  return obs::Registry::Global().counter(obs::WithLabel(
      "chase.gma_firings", gma.label.empty() ? "unlabeled" : gma.label));
}

// Substitutes the head variables of `q` with the constants of `tuple` in
// the body, leaving other variables untouched.
GraphPattern SubstituteHead(const GraphPatternQuery& q, const Tuple& tuple) {
  std::unordered_map<VarId, TermId> map;
  for (size_t i = 0; i < q.head.size(); ++i) {
    map[q.head[i]] = tuple[i];
  }
  auto substitute = [&](const PatternTerm& pt) {
    if (pt.is_var()) {
      auto it = map.find(pt.var());
      if (it != map.end()) return PatternTerm::Const(it->second);
    }
    return pt;
  };
  GraphPattern out;
  for (const TriplePattern& tp : q.body.patterns()) {
    out.Add(TriplePattern{substitute(tp.s), substitute(tp.p),
                          substitute(tp.o)});
  }
  return out;
}

// Instantiates the body of `q` under head tuple `t` plus the witness
// binding of the remaining variables — the premise triples of a GMA
// firing, for provenance recording.
std::vector<Triple> InstantiateBody(const GraphPatternQuery& q,
                                    const Tuple& tuple,
                                    const Binding& witness) {
  std::unordered_map<VarId, TermId> head_map;
  for (size_t i = 0; i < q.head.size(); ++i) head_map[q.head[i]] = tuple[i];
  auto resolve = [&](const PatternTerm& pt) -> TermId {
    if (pt.is_const()) return pt.term();
    auto it = head_map.find(pt.var());
    if (it != head_map.end()) return it->second;
    std::optional<TermId> bound = witness.Get(pt.var());
    return bound.value_or(kInvalidTermId);
  };
  std::vector<Triple> out;
  for (const TriplePattern& tp : q.body.patterns()) {
    out.push_back(Triple{resolve(tp.s), resolve(tp.p), resolve(tp.o)});
  }
  return out;
}

void Record(ProvenanceMap* provenance, const Triple& t,
            TripleDerivation derivation) {
  if (provenance != nullptr) provenance->emplace(t, std::move(derivation));
}

std::string EquivalenceLabel(const Dictionary& dict,
                             const EquivalenceMapping& eq) {
  return dict.ToString(eq.left) + " = " + dict.ToString(eq.right);
}

// Fires `gma` for head tuple `t`: instantiates the to-body with fresh
// blank nodes for the existential variables and inserts it. Newly added
// triples are recorded in provenance and appended to `new_triples` (when
// non-null — the semi-naive schedules feed them into the next delta).
void FireGma(Graph* out, Dictionary* dict, const GraphMappingAssertion& gma,
             const Tuple& t, const std::vector<Triple>& premises,
             RpsChaseStats* stats, ProvenanceMap* provenance,
             std::vector<Triple>* new_triples) {
  std::unordered_map<VarId, TermId> assignment;
  for (size_t i = 0; i < gma.to.head.size(); ++i) {
    assignment[gma.to.head[i]] = t[i];
  }
  for (const TriplePattern& tp : gma.to.body.patterns()) {
    auto materialize = [&](const PatternTerm& pt) -> TermId {
      if (pt.is_const()) return pt.term();
      auto it = assignment.find(pt.var());
      if (it != assignment.end()) return it->second;
      TermId fresh = dict->NewBlank();
      ++stats->blanks_created;
      assignment.emplace(pt.var(), fresh);
      return fresh;
    };
    Triple triple{materialize(tp.s), materialize(tp.p), materialize(tp.o)};
    if (out->InsertUnchecked(triple)) {
      ++stats->triples_added;
      if (new_triples != nullptr) new_triples->push_back(triple);
      Record(provenance, triple,
             TripleDerivation{TripleDerivation::Kind::kGma, gma.label,
                              premises});
    }
  }
  ++stats->gma_firings;
  GmaFiringCounter(gma)->Increment();
}

// Equivalence phase of a naive round: mutual neighbourhood copying for
// every mapping (the six switch blocks of Algorithm 1, Q* semantics —
// blank nodes are copied as-is). The triple budget is enforced per
// insertion, so a budget-aborted run never grows J past max_triples on
// this path. Returns whether any triple was added.
Result<bool> CopyEquivalenceNeighbourhoods(
    Graph* out, const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options, RpsChaseStats* stats) {
  Dictionary* dict = out->dict();
  bool progress = false;
  for (const EquivalenceMapping& eq : equivalences) {
    for (int position = 0; position < 3; ++position) {
      for (auto [from, to] : {std::pair(eq.left, eq.right),
                              std::pair(eq.right, eq.left)}) {
        std::optional<TermId> s, p, o;
        if (position == 0) s = from;
        if (position == 1) p = from;
        if (position == 2) o = from;
        // Materialize matches first: we mutate `out` while copying.
        std::vector<Triple> matches = out->MatchAll(s, p, o);
        for (const Triple& t : matches) {
          Triple copied = t;
          if (position == 0) copied.s = to;
          if (position == 1) copied.p = to;
          if (position == 2) copied.o = to;
          if (out->Contains(copied)) continue;
          if (out->size() >= options.max_triples) {
            return Status::ResourceExhausted(
                "rps chase: max_triples reached");
          }
          out->InsertUnchecked(copied);
          ++stats->triples_added;
          ++stats->eq_triples;
          progress = true;
          if (options.provenance != nullptr) {
            Record(options.provenance, copied,
                   TripleDerivation{TripleDerivation::Kind::kEquivalence,
                                    EquivalenceLabel(*dict, eq), {t}});
          }
        }
      }
    }
  }
  return progress;
}

// One Algorithm-1 equivalence copy step of the semi-naive schedule: the
// delta triple `t` is copied with `to` substituted for `from` at every
// position where `from` occurs, for both orientations of `eq`. Budget is
// enforced per insertion and eq_triples is bumped at the insertion
// itself, so an early ResourceExhausted return still leaves a consistent
// eq_triples / triples_added pair for the metrics flusher.
Status CopyDeltaTriple(Graph* out, const Triple& t,
                       const EquivalenceMapping& eq,
                       const RpsChaseOptions& options, RpsChaseStats* stats,
                       std::vector<Triple>* next_delta) {
  const Dictionary& dict = *out->dict();
  auto copy_if = [&](TermId from, TermId to) -> Status {
    Triple candidates[3];
    size_t n = 0;
    if (t.s == from) candidates[n++] = Triple{to, t.p, t.o};
    if (t.p == from) candidates[n++] = Triple{t.s, to, t.o};
    if (t.o == from) candidates[n++] = Triple{t.s, t.p, to};
    for (size_t i = 0; i < n; ++i) {
      const Triple& copied = candidates[i];
      if (out->Contains(copied)) continue;
      if (out->size() >= options.max_triples) {
        return Status::ResourceExhausted("delta chase: max_triples reached");
      }
      out->InsertUnchecked(copied);
      ++stats->triples_added;
      ++stats->eq_triples;
      next_delta->push_back(copied);
      if (options.provenance != nullptr) {
        Record(options.provenance, copied,
               TripleDerivation{TripleDerivation::Kind::kEquivalence,
                                EquivalenceLabel(dict, eq), {t}});
      }
    }
    return Status();
  };
  RPS_RETURN_IF_ERROR(copy_if(eq.left, eq.right));
  return copy_if(eq.right, eq.left);
}

// A GMA head tuple that survived the snapshot membership precheck, plus
// its provenance witness (both computed read-only in the parallel phase).
struct GmaCandidate {
  Tuple tuple;
  std::vector<Triple> premises;
};

// Appends `t` to `candidates` unless Q'(t) already holds in `snapshot`.
// The precheck is exact for skipping: J only grows, so a tuple satisfied
// in the snapshot is still satisfied at the barrier. Survivors are
// re-checked under the barrier before firing.
void ConsiderCandidate(const Graph& snapshot,
                       const GraphMappingAssertion& gma, const Tuple& t,
                       const RpsChaseOptions& options,
                       std::vector<GmaCandidate>* candidates) {
  GraphPattern check = SubstituteHead(gma.to, t);
  if (!EvalGraphPattern(snapshot, check, options.eval).empty()) return;
  GmaCandidate c;
  c.tuple = t;
  if (options.provenance != nullptr) {
    GraphPattern from_check = SubstituteHead(gma.from, t);
    BindingSet witnesses =
        EvalGraphPattern(snapshot, from_check, options.eval);
    if (!witnesses.empty()) {
      c.premises = InstantiateBody(gma.from, t, witnesses.front());
    }
  }
  candidates->push_back(std::move(c));
}

// Applies one candidate under the single-writer barrier: re-checks Q'
// membership against the live graph (an earlier firing this round may
// have satisfied it), enforces the pre-firing triple budget, then fires.
// Returns whether the firing happened.
Result<bool> ApplyCandidate(Graph* out, Dictionary* dict,
                            const GraphMappingAssertion& gma,
                            const GmaCandidate& c,
                            const RpsChaseOptions& options,
                            RpsChaseStats* stats,
                            std::vector<Triple>* new_triples,
                            const char* budget_message) {
  GraphPattern check = SubstituteHead(gma.to, c.tuple);
  if (!EvalGraphPattern(*out, check, options.eval).empty()) return false;
  if (out->size() >= options.max_triples) {
    return Status::ResourceExhausted(budget_message);
  }
  FireGma(out, dict, gma, c.tuple, c.premises, stats, options.provenance,
          new_triples);
  return true;
}

// Distinct head tuples with non-blank values (the rt guards of the §3
// encoding) from a set of body solutions, in sorted order.
std::set<Tuple> DistinctHeadTuples(const GraphPatternQuery& from,
                                   const BindingSet& solutions,
                                   const Dictionary& dict) {
  std::set<Tuple> tuples;
  for (const Binding& b : solutions) {
    Tuple tuple;
    bool keep = true;
    for (VarId v : from.head) {
      std::optional<TermId> value = b.Get(v);
      if (!value.has_value() || dict.IsBlank(*value)) {
        keep = false;
        break;
      }
      tuple.push_back(*value);
    }
    if (keep) tuples.insert(std::move(tuple));
  }
  return tuples;
}

void AnnotateRun(obs::AutoSpan* span, const RpsChaseStats& stats,
                 const RpsChaseOptions& options, size_t parallel_tasks) {
  span->Annotate("rounds", stats.rounds);
  span->Annotate("triples_added", stats.triples_added);
  span->Annotate("nulls_created", stats.blanks_created);
  if (options.threads > 1) {
    span->Annotate("threads", static_cast<uint64_t>(options.threads));
    span->Annotate("parallel_tasks", static_cast<uint64_t>(parallel_tasks));
  }
}

}  // namespace

Result<RpsChaseStats> BuildUniversalSolution(const RpsSystem& system,
                                             Graph* out,
                                             const RpsChaseOptions& options) {
  if (out->dict() != system.dict()) {
    return Status::InvalidArgument(
        "output graph must share the system's dictionary");
  }
  if (!out->empty()) {
    return Status::InvalidArgument("output graph must start empty");
  }
  obs::AutoSpan span("chase.build_universal_solution");

  // Seed: d ⊆ J for every stored peer database d. Reserving the combined
  // size up front keeps the copy from rehashing `out`'s containers once
  // per growth step.
  out->Reserve(system.dataset().TotalTriples());
  for (const auto& [name, graph] : system.dataset().graphs()) {
    for (const Triple& t : graph.triples()) {
      if (out->InsertUnchecked(t)) {
        Record(options.provenance, t,
               TripleDerivation{TripleDerivation::Kind::kStored, name, {}});
      }
    }
  }
  obs::Registry::Global().counter("chase.stored_triples")->Add(out->size());
  if (options.semi_naive) {
    // The whole stored database is the initial delta.
    return ChaseGraphDelta(out, out->triples(), system.graph_mappings(),
                           system.equivalences(), options);
  }
  return ChaseGraph(out, system.graph_mappings(), system.equivalences(),
                    options);
}

Result<RpsChaseStats> ChaseGraph(
    Graph* out, const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options) {
  Dictionary* dict = out->dict();
  RpsChaseStats stats;
  ChaseMetricsFlusher flusher(&stats);
  obs::Registry& reg = obs::Registry::Global();
  obs::ScopedTimerMs run_timer(reg.histogram("chase.run_ms"));
  obs::AutoSpan span("chase.graph");
  const bool parallel = options.threads > 1;
  size_t parallel_tasks = 0;
  if (parallel) {
    reg.counter("chase.parallel.threads")->Add(options.threads);
  }

  bool progress = true;
  while (progress) {
    progress = false;
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("rps chase: max_rounds reached");
    }
    ++stats.rounds;

    if (!parallel) {
      // Graph mapping assertions, serial (Gauss–Seidel within the round:
      // each mapping sees the insertions of the previous ones).
      for (const GraphMappingAssertion& gma : graph_mappings) {
        // Q_J under the blank-dropping semantics: the rt(x) guard atoms
        // of the §3 encoding are exactly "head values are not blanks".
        std::vector<Tuple> q_result = EvalQuery(
            *out, gma.from, QuerySemantics::kDropBlanks, options.eval);
        for (const Tuple& t : q_result) {
          // Membership of t in Q'_J: does the body of Q' with head := t
          // match J (existentials may bind anything, including blanks)?
          GraphPattern check = SubstituteHead(gma.to, t);
          if (!EvalGraphPattern(*out, check, options.eval).empty()) {
            continue;
          }
          if (out->size() >= options.max_triples) {
            return Status::ResourceExhausted(
                "rps chase: max_triples reached");
          }
          // Provenance: one witness instantiation of the Q body.
          std::vector<Triple> premises;
          if (options.provenance != nullptr) {
            GraphPattern from_check = SubstituteHead(gma.from, t);
            BindingSet from_witnesses =
                EvalGraphPattern(*out, from_check, options.eval);
            if (!from_witnesses.empty()) {
              premises = InstantiateBody(gma.from, t, from_witnesses.front());
            }
          }
          FireGma(out, dict, gma, t, premises, &stats, options.provenance,
                  /*new_triples=*/nullptr);
          progress = true;
        }
      }
    } else {
      // Parallel round (Jacobi): every mapping's premises are evaluated
      // concurrently against the round-start snapshot of J — Phase 1 is
      // strictly read-only. Insertions, fresh blanks, provenance and
      // stats all happen afterwards under the single-writer barrier, in
      // (mapping, tuple) order, so the result is deterministic and
      // independent of the thread count.
      std::vector<std::vector<GmaCandidate>> per_gma(graph_mappings.size());
      ThreadPool::Global().ParallelFor(
          graph_mappings.size(), options.threads, [&](size_t g) {
            const GraphMappingAssertion& gma = graph_mappings[g];
            std::vector<Tuple> q_result = EvalQuery(
                *out, gma.from, QuerySemantics::kDropBlanks, options.eval);
            for (const Tuple& t : q_result) {
              ConsiderCandidate(*out, gma, t, options, &per_gma[g]);
            }
          });
      parallel_tasks += graph_mappings.size();
      reg.counter("chase.parallel.tasks")->Add(graph_mappings.size());

      obs::ScopedTimerMs barrier_timer(
          reg.histogram("chase.parallel.barrier_ms"));
      for (size_t g = 0; g < graph_mappings.size(); ++g) {
        for (const GmaCandidate& c : per_gma[g]) {
          RPS_ASSIGN_OR_RETURN(
              bool fired,
              ApplyCandidate(out, dict, graph_mappings[g], c, options,
                             &stats, /*new_triples=*/nullptr,
                             "rps chase: max_triples reached"));
          progress = progress || fired;
        }
      }
    }

    // Equivalence mappings: serial in both engines (insertion-dominated).
    RPS_ASSIGN_OR_RETURN(
        bool eq_progress,
        CopyEquivalenceNeighbourhoods(out, equivalences, options, &stats));
    progress = progress || eq_progress;
  }

  stats.completed = true;
  AnnotateRun(&span, stats, options, parallel_tasks);
  return stats;
}

Result<RpsChaseStats> ChaseGraphDelta(
    Graph* out, std::vector<Triple> delta,
    const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options) {
  Dictionary* dict = out->dict();
  const Dictionary& cdict = *dict;
  RpsChaseStats stats;
  ChaseMetricsFlusher flusher(&stats);
  obs::Registry& reg = obs::Registry::Global();
  obs::ScopedTimerMs run_timer(reg.histogram("chase.run_ms"));
  obs::AutoSpan span("chase.graph_delta");
  const bool parallel = options.threads > 1;
  size_t parallel_tasks = 0;
  if (parallel) {
    reg.counter("chase.parallel.threads")->Add(options.threads);
  }

  while (!delta.empty()) {
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("delta chase: max_rounds reached");
    }
    ++stats.rounds;
    std::vector<Triple> next_delta;

    // Equivalence mappings: copy only the neighbourhood entries the
    // delta contributes. Serial in both engines; budget per insertion.
    for (const EquivalenceMapping& eq : equivalences) {
      for (const Triple& t : delta) {
        RPS_RETURN_IF_ERROR(
            CopyDeltaTriple(out, t, eq, options, &stats, &next_delta));
      }
    }

    // Graph mapping assertions, semi-naive: one body pattern is matched
    // against the delta, the rest against the full J.
    if (!parallel) {
      for (const GraphMappingAssertion& gma : graph_mappings) {
        const std::vector<TriplePattern>& patterns = gma.from.body.patterns();
        for (size_t di = 0; di < patterns.size(); ++di) {
          // Seed bindings: delta triples matching pattern di.
          BindingSet seeds;
          for (const Triple& t : delta) {
            std::optional<Binding> b = MatchTriple(patterns[di], t);
            if (b.has_value()) seeds.push_back(std::move(*b));
          }
          if (seeds.empty()) continue;
          std::vector<TriplePattern> rest;
          for (size_t j = 0; j < patterns.size(); ++j) {
            if (j != di) rest.push_back(patterns[j]);
          }
          BindingSet solutions =
              ExtendBindings(*out, rest, std::move(seeds), options.eval);

          for (const Tuple& t :
               DistinctHeadTuples(gma.from, solutions, cdict)) {
            GraphPattern check = SubstituteHead(gma.to, t);
            if (!EvalGraphPattern(*out, check, options.eval).empty()) {
              continue;
            }
            if (out->size() >= options.max_triples) {
              return Status::ResourceExhausted(
                  "delta chase: max_triples reached");
            }
            std::vector<Triple> premises;
            if (options.provenance != nullptr) {
              GraphPattern from_check = SubstituteHead(gma.from, t);
              BindingSet from_witnesses =
                  EvalGraphPattern(*out, from_check, options.eval);
              if (!from_witnesses.empty()) {
                premises =
                    InstantiateBody(gma.from, t, from_witnesses.front());
              }
            }
            FireGma(out, dict, gma, t, premises, &stats, options.provenance,
                    &next_delta);
          }
        }
      }
    } else {
      // Parallel semi-naive round: one task per (mapping, seed-pattern)
      // pair joins its delta seeds against the round-start snapshot of J
      // (read-only), then the barrier applies firings in task order.
      struct DeltaTask {
        size_t g = 0;
        size_t di = 0;
      };
      std::vector<DeltaTask> tasks;
      for (size_t g = 0; g < graph_mappings.size(); ++g) {
        size_t body = graph_mappings[g].from.body.patterns().size();
        for (size_t di = 0; di < body; ++di) tasks.push_back({g, di});
      }
      std::vector<std::vector<GmaCandidate>> per_task(tasks.size());
      ThreadPool::Global().ParallelFor(
          tasks.size(), options.threads, [&](size_t ti) {
            const GraphMappingAssertion& gma = graph_mappings[tasks[ti].g];
            const std::vector<TriplePattern>& patterns =
                gma.from.body.patterns();
            BindingSet seeds;
            for (const Triple& t : delta) {
              std::optional<Binding> b =
                  MatchTriple(patterns[tasks[ti].di], t);
              if (b.has_value()) seeds.push_back(std::move(*b));
            }
            if (seeds.empty()) return;
            std::vector<TriplePattern> rest;
            for (size_t j = 0; j < patterns.size(); ++j) {
              if (j != tasks[ti].di) rest.push_back(patterns[j]);
            }
            BindingSet solutions =
                ExtendBindings(*out, rest, std::move(seeds), options.eval);
            for (const Tuple& t :
                 DistinctHeadTuples(gma.from, solutions, cdict)) {
              ConsiderCandidate(*out, gma, t, options, &per_task[ti]);
            }
          });
      parallel_tasks += tasks.size();
      reg.counter("chase.parallel.tasks")->Add(tasks.size());

      obs::ScopedTimerMs barrier_timer(
          reg.histogram("chase.parallel.barrier_ms"));
      for (size_t ti = 0; ti < tasks.size(); ++ti) {
        for (const GmaCandidate& c : per_task[ti]) {
          RPS_ASSIGN_OR_RETURN(
              bool fired,
              ApplyCandidate(out, dict, graph_mappings[tasks[ti].g], c,
                             options, &stats, &next_delta,
                             "delta chase: max_triples reached"));
          (void)fired;
        }
      }
    }

    delta = std::move(next_delta);
  }
  stats.completed = true;
  AnnotateRun(&span, stats, options, parallel_tasks);
  return stats;
}

}  // namespace rps
