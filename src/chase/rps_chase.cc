#include "chase/rps_chase.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rps {

namespace {

// Flushes the run's statistics into the global metrics registry on scope
// exit, so budget-aborted runs (which return an error Status and discard
// their RpsChaseStats) still report the work they did. The termination
// counters chase.term.{fixpoint,budget_exhausted} record Algorithm 1's
// exit reason.
class ChaseMetricsFlusher {
 public:
  explicit ChaseMetricsFlusher(const RpsChaseStats* stats) : stats_(stats) {}
  ChaseMetricsFlusher(const ChaseMetricsFlusher&) = delete;
  ChaseMetricsFlusher& operator=(const ChaseMetricsFlusher&) = delete;
  ~ChaseMetricsFlusher() {
    obs::Registry& reg = obs::Registry::Global();
    reg.counter("chase.runs")->Increment();
    reg.counter("chase.rounds")->Add(stats_->rounds);
    reg.counter("chase.triples_added")->Add(stats_->triples_added);
    reg.counter("chase.nulls_created")->Add(stats_->blanks_created);
    reg.counter("chase.gma_firings")->Add(stats_->gma_firings);
    reg.counter("chase.eq_triples")->Add(stats_->eq_triples);
    reg.counter(stats_->completed ? "chase.term.fixpoint"
                                  : "chase.term.budget_exhausted")
        ->Increment();
  }

 private:
  const RpsChaseStats* stats_;
};

// Per-mapping firing counter: chase.gma_firings{<label>}.
obs::Counter* GmaFiringCounter(const GraphMappingAssertion& gma) {
  return obs::Registry::Global().counter(obs::WithLabel(
      "chase.gma_firings", gma.label.empty() ? "unlabeled" : gma.label));
}

// Substitutes the head variables of `q` with the constants of `tuple` in
// the body, leaving other variables untouched.
GraphPattern SubstituteHead(const GraphPatternQuery& q, const Tuple& tuple) {
  std::unordered_map<VarId, TermId> map;
  for (size_t i = 0; i < q.head.size(); ++i) {
    map[q.head[i]] = tuple[i];
  }
  auto substitute = [&](const PatternTerm& pt) {
    if (pt.is_var()) {
      auto it = map.find(pt.var());
      if (it != map.end()) return PatternTerm::Const(it->second);
    }
    return pt;
  };
  GraphPattern out;
  for (const TriplePattern& tp : q.body.patterns()) {
    out.Add(TriplePattern{substitute(tp.s), substitute(tp.p),
                          substitute(tp.o)});
  }
  return out;
}

// Instantiates the body of `q` under head tuple `t` plus the witness
// binding of the remaining variables — the premise triples of a GMA
// firing, for provenance recording.
std::vector<Triple> InstantiateBody(const GraphPatternQuery& q,
                                    const Tuple& tuple,
                                    const Binding& witness) {
  std::unordered_map<VarId, TermId> head_map;
  for (size_t i = 0; i < q.head.size(); ++i) head_map[q.head[i]] = tuple[i];
  auto resolve = [&](const PatternTerm& pt) -> TermId {
    if (pt.is_const()) return pt.term();
    auto it = head_map.find(pt.var());
    if (it != head_map.end()) return it->second;
    std::optional<TermId> bound = witness.Get(pt.var());
    return bound.value_or(kInvalidTermId);
  };
  std::vector<Triple> out;
  for (const TriplePattern& tp : q.body.patterns()) {
    out.push_back(Triple{resolve(tp.s), resolve(tp.p), resolve(tp.o)});
  }
  return out;
}

void Record(ProvenanceMap* provenance, const Triple& t,
            TripleDerivation derivation) {
  if (provenance != nullptr) provenance->emplace(t, std::move(derivation));
}

std::string EquivalenceLabel(const Dictionary& dict,
                             const EquivalenceMapping& eq) {
  return dict.ToString(eq.left) + " = " + dict.ToString(eq.right);
}

}  // namespace

Result<RpsChaseStats> BuildUniversalSolution(const RpsSystem& system,
                                             Graph* out,
                                             const RpsChaseOptions& options) {
  if (out->dict() != system.dict()) {
    return Status::InvalidArgument(
        "output graph must share the system's dictionary");
  }
  if (!out->empty()) {
    return Status::InvalidArgument("output graph must start empty");
  }
  obs::AutoSpan span("chase.build_universal_solution");

  // Seed: d ⊆ J for every stored peer database d.
  for (const auto& [name, graph] : system.dataset().graphs()) {
    for (const Triple& t : graph.triples()) {
      if (out->InsertUnchecked(t)) {
        Record(options.provenance, t,
               TripleDerivation{TripleDerivation::Kind::kStored, name, {}});
      }
    }
  }
  obs::Registry::Global().counter("chase.stored_triples")->Add(out->size());
  if (options.semi_naive) {
    // The whole stored database is the initial delta.
    return ChaseGraphDelta(out, out->triples(), system.graph_mappings(),
                           system.equivalences(), options);
  }
  return ChaseGraph(out, system.graph_mappings(), system.equivalences(),
                    options);
}

Result<RpsChaseStats> ChaseGraph(
    Graph* out, const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options) {
  Dictionary* dict = out->dict();
  RpsChaseStats stats;
  ChaseMetricsFlusher flusher(&stats);
  obs::ScopedTimerMs run_timer(
      obs::Registry::Global().histogram("chase.run_ms"));
  obs::AutoSpan span("chase.graph");

  bool progress = true;
  while (progress) {
    progress = false;
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("rps chase: max_rounds reached");
    }
    ++stats.rounds;

    // Graph mapping assertions: Q_J ⊆ Q'_J.
    for (const GraphMappingAssertion& gma : graph_mappings) {
      // Q_J under the blank-dropping semantics: the rt(x) guard atoms of
      // the §3 encoding are exactly "head values are not blank nodes".
      std::vector<Tuple> q_result =
          EvalQuery(*out, gma.from, QuerySemantics::kDropBlanks,
                    options.eval);
      for (const Tuple& t : q_result) {
        // Membership of t in Q'_J: does the body of Q' with head := t
        // match J (existentials may bind anything, including blanks)?
        GraphPattern check = SubstituteHead(gma.to, t);
        BindingSet witnesses = EvalGraphPattern(*out, check, options.eval);
        if (!witnesses.empty()) continue;

        if (out->size() >= options.max_triples) {
          return Status::ResourceExhausted("rps chase: max_triples reached");
        }
        // Provenance: one witness instantiation of the Q body.
        std::vector<Triple> premises;
        if (options.provenance != nullptr) {
          GraphPattern from_check = SubstituteHead(gma.from, t);
          BindingSet from_witnesses =
              EvalGraphPattern(*out, from_check, options.eval);
          if (!from_witnesses.empty()) {
            premises = InstantiateBody(gma.from, t, from_witnesses.front());
          }
        }
        // Fire: instantiate Q' with fresh blank nodes for existentials.
        std::unordered_map<VarId, TermId> assignment;
        for (size_t i = 0; i < gma.to.head.size(); ++i) {
          assignment[gma.to.head[i]] = t[i];
        }
        for (const TriplePattern& tp : gma.to.body.patterns()) {
          auto materialize = [&](const PatternTerm& pt) -> TermId {
            if (pt.is_const()) return pt.term();
            auto it = assignment.find(pt.var());
            if (it != assignment.end()) return it->second;
            TermId fresh = dict->NewBlank();
            ++stats.blanks_created;
            assignment.emplace(pt.var(), fresh);
            return fresh;
          };
          Triple triple{materialize(tp.s), materialize(tp.p),
                        materialize(tp.o)};
          if (out->InsertUnchecked(triple)) {
            ++stats.triples_added;
            Record(options.provenance, triple,
                   TripleDerivation{TripleDerivation::Kind::kGma, gma.label,
                                    premises});
          }
        }
        ++stats.gma_firings;
        GmaFiringCounter(gma)->Increment();
        progress = true;
      }
    }

    // Equivalence mappings: mutual neighbourhood copying (Q* semantics —
    // blank nodes are copied as-is).
    for (const EquivalenceMapping& eq : equivalences) {
      auto copy_position = [&](TermId from, TermId to, int position) {
        std::optional<TermId> s, p, o;
        if (position == 0) s = from;
        if (position == 1) p = from;
        if (position == 2) o = from;
        // Materialize matches first: we mutate `out` while copying.
        std::vector<Triple> matches = out->MatchAll(s, p, o);
        for (const Triple& t : matches) {
          Triple copied = t;
          if (position == 0) copied.s = to;
          if (position == 1) copied.p = to;
          if (position == 2) copied.o = to;
          if (out->InsertUnchecked(copied)) {
            ++stats.triples_added;
            ++stats.eq_triples;
            progress = true;
            Record(options.provenance, copied,
                   TripleDerivation{TripleDerivation::Kind::kEquivalence,
                                    EquivalenceLabel(*dict, eq), {t}});
          }
        }
      };
      if (out->size() >= options.max_triples) {
        return Status::ResourceExhausted("rps chase: max_triples reached");
      }
      for (int position = 0; position < 3; ++position) {
        copy_position(eq.left, eq.right, position);
        copy_position(eq.right, eq.left, position);
      }
    }
  }

  stats.completed = true;
  span.Annotate("rounds", stats.rounds);
  span.Annotate("triples_added", stats.triples_added);
  span.Annotate("nulls_created", stats.blanks_created);
  return stats;
}

Result<RpsChaseStats> ChaseGraphDelta(
    Graph* out, std::vector<Triple> delta,
    const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options) {
  Dictionary* dict = out->dict();
  const Dictionary& cdict = *dict;
  RpsChaseStats stats;
  ChaseMetricsFlusher flusher(&stats);
  obs::ScopedTimerMs run_timer(
      obs::Registry::Global().histogram("chase.run_ms"));
  obs::AutoSpan span("chase.graph_delta");

  while (!delta.empty()) {
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("delta chase: max_rounds reached");
    }
    ++stats.rounds;
    std::vector<Triple> next_delta;
    // `derive` is only invoked when the triple is new and provenance is
    // being recorded.
    auto emit = [&](const Triple& t,
                    const std::function<TripleDerivation()>& derive) {
      if (out->InsertUnchecked(t)) {
        ++stats.triples_added;
        next_delta.push_back(t);
        if (options.provenance != nullptr) {
          options.provenance->emplace(t, derive());
        }
      }
    };

    // Equivalence mappings: copy only the neighbourhood entries the delta
    // contributes.
    for (const EquivalenceMapping& eq : equivalences) {
      size_t before = stats.triples_added;
      for (const Triple& t : delta) {
        // One position at a time, matching Algorithm 1's per-position
        // copy rules.
        auto copy_if = [&](TermId from, TermId to) {
          auto derive = [&]() {
            return TripleDerivation{TripleDerivation::Kind::kEquivalence,
                                    EquivalenceLabel(cdict, eq), {t}};
          };
          if (t.s == from) emit(Triple{to, t.p, t.o}, derive);
          if (t.p == from) emit(Triple{t.s, to, t.o}, derive);
          if (t.o == from) emit(Triple{t.s, t.p, to}, derive);
        };
        copy_if(eq.left, eq.right);
        copy_if(eq.right, eq.left);
      }
      stats.eq_triples += stats.triples_added - before;
      if (out->size() >= options.max_triples) {
        return Status::ResourceExhausted("delta chase: max_triples reached");
      }
    }

    // Graph mapping assertions, semi-naive: one body pattern is matched
    // against the delta, the rest against the full J.
    for (const GraphMappingAssertion& gma : graph_mappings) {
      const std::vector<TriplePattern>& patterns =
          gma.from.body.patterns();
      for (size_t di = 0; di < patterns.size(); ++di) {
        // Seed bindings: delta triples matching pattern di.
        BindingSet seeds;
        for (const Triple& t : delta) {
          std::optional<Binding> b = MatchTriple(patterns[di], t);
          if (b.has_value()) seeds.push_back(std::move(*b));
        }
        if (seeds.empty()) continue;
        std::vector<TriplePattern> rest;
        for (size_t j = 0; j < patterns.size(); ++j) {
          if (j != di) rest.push_back(patterns[j]);
        }
        BindingSet solutions =
            ExtendBindings(*out, rest, std::move(seeds), options.eval);

        // Distinct head tuples with non-blank values (the rt guards).
        std::set<Tuple> tuples;
        for (const Binding& b : solutions) {
          Tuple tuple;
          bool keep = true;
          for (VarId v : gma.from.head) {
            std::optional<TermId> value = b.Get(v);
            if (!value.has_value() || cdict.IsBlank(*value)) {
              keep = false;
              break;
            }
            tuple.push_back(*value);
          }
          if (keep) tuples.insert(std::move(tuple));
        }

        for (const Tuple& t : tuples) {
          GraphPattern check = SubstituteHead(gma.to, t);
          if (!EvalGraphPattern(*out, check, options.eval).empty()) continue;
          if (out->size() >= options.max_triples) {
            return Status::ResourceExhausted(
                "delta chase: max_triples reached");
          }
          std::vector<Triple> premises;
          if (options.provenance != nullptr) {
            GraphPattern from_check = SubstituteHead(gma.from, t);
            BindingSet from_witnesses =
                EvalGraphPattern(*out, from_check, options.eval);
            if (!from_witnesses.empty()) {
              premises =
                  InstantiateBody(gma.from, t, from_witnesses.front());
            }
          }
          std::unordered_map<VarId, TermId> assignment;
          for (size_t i = 0; i < gma.to.head.size(); ++i) {
            assignment[gma.to.head[i]] = t[i];
          }
          for (const TriplePattern& tp : gma.to.body.patterns()) {
            auto materialize = [&](const PatternTerm& pt) -> TermId {
              if (pt.is_const()) return pt.term();
              auto it = assignment.find(pt.var());
              if (it != assignment.end()) return it->second;
              TermId fresh = dict->NewBlank();
              ++stats.blanks_created;
              assignment.emplace(pt.var(), fresh);
              return fresh;
            };
            emit(Triple{materialize(tp.s), materialize(tp.p),
                        materialize(tp.o)},
                 [&]() {
                   return TripleDerivation{TripleDerivation::Kind::kGma,
                                           gma.label, premises};
                 });
          }
          ++stats.gma_firings;
          GmaFiringCounter(gma)->Increment();
        }
      }
    }

    delta = std::move(next_delta);
  }
  stats.completed = true;
  span.Annotate("rounds", stats.rounds);
  span.Annotate("triples_added", stats.triples_added);
  span.Annotate("nulls_created", stats.blanks_created);
  return stats;
}

}  // namespace rps
