#include "chase/relational_chase.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rps {

bool RelationalInstance::Insert(PredId pred, std::vector<TermId> args) {
  assert(args.size() == preds_->arity(pred));
  PredStore& store = StoreFor(pred);
  auto [it, inserted] = store.set.insert(args);
  if (!inserted) return false;
  uint32_t row_idx = static_cast<uint32_t>(store.rows.size());
  store.rows.push_back(args);
  for (size_t i = 0; i < args.size(); ++i) {
    store.index[i][args[i]].push_back(row_idx);
  }
  ++fact_count_;
  return true;
}

bool RelationalInstance::Contains(PredId pred,
                                  const std::vector<TermId>& args) const {
  const PredStore* store = StoreFor(pred);
  if (store == nullptr) return false;
  return store->set.count(args) > 0;
}

const std::vector<std::vector<TermId>>& RelationalInstance::Facts(
    PredId pred) const {
  const PredStore* store = StoreFor(pred);
  if (store == nullptr) return empty_;
  return store->rows;
}

RelationalInstance::PredStore& RelationalInstance::StoreFor(PredId pred) {
  if (pred >= stores_.size()) {
    stores_.resize(pred + 1);
  }
  PredStore& store = stores_[pred];
  if (store.index.empty()) {
    store.index.resize(preds_->arity(pred));
  }
  return store;
}

const RelationalInstance::PredStore* RelationalInstance::StoreFor(
    PredId pred) const {
  if (pred >= stores_.size()) return nullptr;
  return &stores_[pred];
}

namespace {

// Resolves an atom argument under the current assignment: returns the
// bound constant, or nullopt for an unbound variable.
std::optional<TermId> ResolveArg(const AtomArg& arg,
                                 const VarAssignment& assignment) {
  if (arg.is_const()) return arg.term();
  auto it = assignment.find(arg.var());
  if (it == assignment.end()) return std::nullopt;
  return it->second;
}

}  // namespace

void RelationalInstance::FindHomomorphisms(
    const std::vector<Atom>& atoms, const VarAssignment& seed,
    const std::function<bool(const VarAssignment&)>& fn) const {
  VarAssignment assignment = seed;
  std::vector<bool> done(atoms.size(), false);

  // Recursive backtracking; returns false to stop the whole search.
  std::function<bool(size_t)> solve = [&](size_t remaining) -> bool {
    if (remaining == 0) {
      return fn(assignment);
    }
    // Pick the undone atom with the most bound arguments; tie-break on the
    // smallest candidate estimate.
    size_t best = atoms.size();
    size_t best_bound = 0;
    size_t best_estimate = SIZE_MAX;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (done[i]) continue;
      const Atom& atom = atoms[i];
      const PredStore* store = StoreFor(atom.pred);
      // A store created by resize for another predicate has no index yet;
      // treat it as empty.
      if (store != nullptr && store->index.empty()) store = nullptr;
      size_t rows = store == nullptr ? 0 : store->rows.size();
      size_t bound = 0;
      size_t estimate = rows;
      for (size_t j = 0; j < atom.args.size(); ++j) {
        std::optional<TermId> v = ResolveArg(atom.args[j], assignment);
        if (!v.has_value()) continue;
        ++bound;
        if (store != nullptr) {
          auto it = store->index[j].find(*v);
          size_t n = it == store->index[j].end() ? 0 : it->second.size();
          estimate = std::min(estimate, n);
        }
      }
      if (best == atoms.size() || bound > best_bound ||
          (bound == best_bound && estimate < best_estimate)) {
        best = i;
        best_bound = bound;
        best_estimate = estimate;
      }
    }

    const Atom& atom = atoms[best];
    const PredStore* store = StoreFor(atom.pred);
    if (store == nullptr || store->rows.empty() || store->index.empty()) {
      return true;  // predicate has no facts: no match on this branch
    }

    // Candidate rows: smallest posting list among bound positions, else
    // all rows.
    const std::vector<uint32_t>* postings = nullptr;
    size_t postings_size = SIZE_MAX;
    for (size_t j = 0; j < atom.args.size(); ++j) {
      std::optional<TermId> v = ResolveArg(atom.args[j], assignment);
      if (!v.has_value()) continue;
      auto it = store->index[j].find(*v);
      if (it == store->index[j].end()) return true;  // no candidate rows
      if (it->second.size() < postings_size) {
        postings = &it->second;
        postings_size = it->second.size();
      }
    }

    done[best] = true;
    auto try_row = [&](const std::vector<TermId>& row) -> bool {
      // Attempt to extend the assignment with this row.
      std::vector<VarId> newly_bound;
      bool match = true;
      for (size_t j = 0; j < atom.args.size(); ++j) {
        const AtomArg& arg = atom.args[j];
        if (arg.is_const()) {
          if (arg.term() != row[j]) {
            match = false;
            break;
          }
          continue;
        }
        auto it = assignment.find(arg.var());
        if (it != assignment.end()) {
          if (it->second != row[j]) {
            match = false;
            break;
          }
        } else {
          assignment.emplace(arg.var(), row[j]);
          newly_bound.push_back(arg.var());
        }
      }
      bool keep_going = true;
      if (match) {
        keep_going = solve(remaining - 1);
      }
      for (VarId v : newly_bound) assignment.erase(v);
      return keep_going;
    };

    bool keep_going = true;
    if (postings != nullptr) {
      for (uint32_t row_idx : *postings) {
        if (!try_row(store->rows[row_idx])) {
          keep_going = false;
          break;
        }
      }
    } else {
      for (const std::vector<TermId>& row : store->rows) {
        if (!try_row(row)) {
          keep_going = false;
          break;
        }
      }
    }
    done[best] = false;
    return keep_going;
  };

  solve(atoms.size());
}

bool RelationalInstance::HasHomomorphism(const std::vector<Atom>& atoms,
                                         const VarAssignment& seed) const {
  bool found = false;
  FindHomomorphisms(atoms, seed, [&](const VarAssignment&) {
    found = true;
    return false;  // stop at the first witness
  });
  return found;
}

namespace {

// Flushes the run's statistics into the global metrics registry on scope
// exit — also on the budget-exhausted error paths, which discard their
// ChaseStats. relchase.term.* records why the run stopped.
class RelationalChaseMetricsFlusher {
 public:
  explicit RelationalChaseMetricsFlusher(const ChaseStats* stats)
      : stats_(stats) {}
  RelationalChaseMetricsFlusher(const RelationalChaseMetricsFlusher&) =
      delete;
  RelationalChaseMetricsFlusher& operator=(
      const RelationalChaseMetricsFlusher&) = delete;
  ~RelationalChaseMetricsFlusher() {
    obs::Registry& reg = obs::Registry::Global();
    reg.counter("relchase.runs")->Increment();
    reg.counter("relchase.rounds")->Add(stats_->rounds);
    reg.counter("relchase.applications")->Add(stats_->applications);
    reg.counter("relchase.facts_created")->Add(stats_->facts_created);
    reg.counter("relchase.nulls_created")->Add(stats_->nulls_created);
    reg.counter(stats_->completed ? "relchase.term.fixpoint"
                                  : "relchase.term.budget_exhausted")
        ->Increment();
  }

 private:
  const ChaseStats* stats_;
};

}  // namespace

Result<ChaseStats> ChaseTgds(const std::vector<Tgd>& tgds,
                             RelationalInstance* instance, Dictionary* dict,
                             const ChaseOptions& options) {
  ChaseStats stats;
  RelationalChaseMetricsFlusher flusher(&stats);
  obs::Registry& reg = obs::Registry::Global();
  obs::ScopedTimerMs run_timer(reg.histogram("relchase.run_ms"));
  obs::AutoSpan span("chase.tgds");

  // Per-TGD firing counters, resolved once per run:
  // relchase.tgd_firings{<label>}.
  std::vector<obs::Counter*> firing_counters;
  firing_counters.reserve(tgds.size());
  for (size_t t = 0; t < tgds.size(); ++t) {
    std::string label = tgds[t].label.empty()
                            ? "tgd" + std::to_string(t)
                            : tgds[t].label;
    firing_counters.push_back(
        reg.counter(obs::WithLabel("relchase.tgd_firings", label)));
  }

  // Pre-compute per-TGD frontier and existential variable lists.
  struct TgdInfo {
    std::vector<VarId> frontier;
    std::vector<VarId> existential;
  };
  std::vector<TgdInfo> infos;
  infos.reserve(tgds.size());
  for (const Tgd& tgd : tgds) {
    TgdInfo info;
    for (VarId v : tgd.FrontierVars()) info.frontier.push_back(v);
    for (VarId v : tgd.ExistentialVars()) info.existential.push_back(v);
    infos.push_back(std::move(info));
  }

  struct FrontierHash {
    size_t operator()(const std::vector<TermId>& key) const {
      size_t h = 1469598103934665603ULL;
      for (TermId t : key) h = (h ^ t) * 1099511628211ULL;
      return h;
    }
  };

  bool progress = true;
  while (progress) {
    progress = false;
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("chase: max_rounds reached");
    }
    ++stats.rounds;

    for (size_t t = 0; t < tgds.size(); ++t) {
      const Tgd& tgd = tgds[t];
      const TgdInfo& info = infos[t];

      // Snapshot the distinct frontier assignments of all body
      // homomorphisms (facts added while firing this TGD must not be
      // matched until the next round — that keeps rounds fair).
      std::unordered_set<std::vector<TermId>, FrontierHash> triggers;
      std::vector<std::vector<TermId>> trigger_list;
      instance->FindHomomorphisms(
          tgd.body, {}, [&](const VarAssignment& assignment) {
            std::vector<TermId> key;
            key.reserve(info.frontier.size());
            for (VarId v : info.frontier) key.push_back(assignment.at(v));
            if (triggers.insert(key).second) {
              trigger_list.push_back(std::move(key));
            }
            return true;
          });

      for (const std::vector<TermId>& key : trigger_list) {
        VarAssignment frontier_assignment;
        for (size_t i = 0; i < info.frontier.size(); ++i) {
          frontier_assignment.emplace(info.frontier[i], key[i]);
        }
        // Restricted chase: fire only if the head is not already
        // satisfiable under this frontier assignment.
        if (instance->HasHomomorphism(tgd.head, frontier_assignment)) {
          continue;
        }
        if (stats.applications >= options.max_applications) {
          return Status::ResourceExhausted("chase: max_applications reached");
        }
        if (instance->FactCount() >= options.max_facts) {
          return Status::ResourceExhausted("chase: max_facts reached");
        }
        // Mint fresh labelled nulls (blank nodes) for existential vars.
        VarAssignment extended = frontier_assignment;
        for (VarId v : info.existential) {
          extended.emplace(v, dict->NewBlank());
          ++stats.nulls_created;
        }
        for (const Atom& head_atom : tgd.head) {
          std::vector<TermId> row;
          row.reserve(head_atom.args.size());
          for (const AtomArg& arg : head_atom.args) {
            row.push_back(arg.is_const() ? arg.term()
                                         : extended.at(arg.var()));
          }
          if (instance->Insert(head_atom.pred, std::move(row))) {
            ++stats.facts_created;
          }
        }
        ++stats.applications;
        firing_counters[t]->Increment();
        progress = true;
      }
    }
  }
  stats.completed = true;
  span.Annotate("rounds", stats.rounds);
  span.Annotate("applications", stats.applications);
  span.Annotate("nulls_created", stats.nulls_created);
  return stats;
}

}  // namespace rps
