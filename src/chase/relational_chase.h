#ifndef RPS_CHASE_RELATIONAL_CHASE_H_
#define RPS_CHASE_RELATIONAL_CHASE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tgd/tgd.h"
#include "util/result.h"

namespace rps {

/// A ground assignment of variables produced by homomorphism search.
using VarAssignment = std::unordered_map<VarId, TermId>;

/// A set of ground relational facts over interned predicates, with
/// per-position inverted indexes for conjunctive matching. Constants are
/// TermIds; labelled nulls are TermIds of blank nodes minted through
/// Dictionary::NewBlank, exactly as in §3 of the paper ("the chase
/// generates new blank nodes as labelled nulls").
class RelationalInstance {
 public:
  explicit RelationalInstance(const PredTable* preds) : preds_(preds) {}

  /// Inserts a fact; returns true if it was new. The argument count must
  /// match the predicate arity.
  bool Insert(PredId pred, std::vector<TermId> args);

  bool Contains(PredId pred, const std::vector<TermId>& args) const;

  /// All facts of `pred`, in insertion order.
  const std::vector<std::vector<TermId>>& Facts(PredId pred) const;

  /// Total number of facts across predicates.
  size_t FactCount() const { return fact_count_; }

  /// Enumerates homomorphisms from the conjunction `atoms` into this
  /// instance, extending `seed`. Invokes `fn` for each complete
  /// assignment; if `fn` returns false, enumeration stops early.
  void FindHomomorphisms(const std::vector<Atom>& atoms,
                         const VarAssignment& seed,
                         const std::function<bool(const VarAssignment&)>& fn)
      const;

  /// True if at least one homomorphism extending `seed` exists.
  bool HasHomomorphism(const std::vector<Atom>& atoms,
                       const VarAssignment& seed) const;

  const PredTable* preds() const { return preds_; }

 private:
  struct RowHash {
    size_t operator()(const std::vector<TermId>& row) const {
      size_t h = 1469598103934665603ULL;
      for (TermId t : row) h = (h ^ t) * 1099511628211ULL;
      return h;
    }
  };

  struct PredStore {
    std::vector<std::vector<TermId>> rows;
    std::unordered_set<std::vector<TermId>, RowHash> set;
    // index[position][term] = row indices
    std::vector<std::unordered_map<TermId, std::vector<uint32_t>>> index;
  };

  PredStore& StoreFor(PredId pred);
  const PredStore* StoreFor(PredId pred) const;

  const PredTable* preds_;
  std::vector<PredStore> stores_;
  size_t fact_count_ = 0;
  std::vector<std::vector<TermId>> empty_;
};

/// Budgets for a chase run. The RPS-derived dependency sets always
/// terminate (Theorem 1), but the generic engine also accepts arbitrary
/// TGDs (e.g. the transitive-closure set of Proposition 3), so callers can
/// bound work.
struct ChaseOptions {
  size_t max_applications = 10'000'000;
  size_t max_facts = 50'000'000;
  size_t max_rounds = SIZE_MAX;
};

/// Statistics of a chase run.
struct ChaseStats {
  size_t applications = 0;    // TGD trigger firings that added facts
  size_t facts_created = 0;   // facts added
  size_t nulls_created = 0;   // fresh labelled nulls minted
  size_t rounds = 0;          // fixpoint iterations over the TGD set
  bool completed = false;     // reached fixpoint within budget
};

/// Runs the restricted (standard) chase of `tgds` over `*instance`:
/// for every homomorphism h of a TGD body, if no extension of h satisfies
/// the head, head atoms are added with fresh labelled nulls for the
/// existential variables (minted via `dict->NewBlank()`).
///
/// Returns ResourceExhausted if a budget was hit (instance holds the
/// partial chase); otherwise the stats with completed=true.
Result<ChaseStats> ChaseTgds(const std::vector<Tgd>& tgds,
                             RelationalInstance* instance, Dictionary* dict,
                             const ChaseOptions& options = ChaseOptions());

}  // namespace rps

#endif  // RPS_CHASE_RELATIONAL_CHASE_H_
