#ifndef RPS_CHASE_RPS_CHASE_H_
#define RPS_CHASE_RPS_CHASE_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "peer/rps_system.h"
#include "query/eval.h"
#include "util/result.h"

namespace rps {

/// How one triple of the universal solution came to be: stored by a peer,
/// produced by a graph mapping assertion firing, or copied by an
/// equivalence mapping. Recorded (optionally) by the chase and consumed by
/// the explanation module (peer/provenance.h).
struct TripleDerivation {
  enum class Kind { kStored, kGma, kEquivalence };
  Kind kind = Kind::kStored;
  /// kStored: the contributing peer's name. kGma / kEquivalence: the
  /// mapping's diagnostic label.
  std::string source;
  /// The premise triples the step consumed (empty for stored triples).
  std::vector<Triple> premises;
};

/// First derivation recorded per triple (the chase may re-derive a triple
/// later; the original justification is kept).
using ProvenanceMap =
    std::unordered_map<Triple, TripleDerivation, TripleHash>;

/// Budgets and knobs for the RPS chase (Algorithm 1 of the paper).
struct RpsChaseOptions {
  size_t max_rounds = SIZE_MAX;
  size_t max_triples = 50'000'000;
  /// Use the semi-naive (delta-driven) schedule for the full chase:
  /// instead of re-evaluating every mapping over all of J each round,
  /// only homomorphisms touching the previous round's new triples are
  /// considered. Same fixpoint, usually far fewer joins (scheduling
  /// ablation, DESIGN.md §5.3).
  bool semi_naive = false;
  /// When non-null, the chase records one derivation per triple of J
  /// (including the stored seeds). Slows GMA firings slightly: a witness
  /// body instantiation is computed per fired tuple.
  ProvenanceMap* provenance = nullptr;
  /// Maximum threads for the parallel round engine. With threads > 1,
  /// each round evaluates all GMA premises (naive) or delta-seed joins
  /// (semi-naive) concurrently against the round-start snapshot of J
  /// into per-task candidate buffers, then applies insertions, fresh
  /// blanks, provenance and metrics serially under a single-writer
  /// barrier in (mapping, tuple) order. The result is deterministic and
  /// identical for every thread count > 1; certain answers also coincide
  /// with the serial (threads = 1) schedules. 1 keeps the serial engine.
  size_t threads = 1;
  EvalOptions eval;
};

/// Statistics of an Algorithm 1 run.
struct RpsChaseStats {
  size_t rounds = 0;
  size_t triples_added = 0;    // beyond the stored database
  size_t blanks_created = 0;   // labelled nulls minted by GMA heads
  size_t gma_firings = 0;      // graph-mapping-assertion chase steps
  size_t eq_triples = 0;       // triples added by equivalence copying
  bool completed = false;      // reached fixpoint within budget
};

/// Algorithm 1 (Appendix): materializes a universal solution for `system`
/// into `*out` by chasing the stored database with the graph mapping
/// assertions and equivalence mappings until fixpoint:
///  * seed: every stored triple is copied into J;
///  * per graph mapping assertion Q ⇝ Q': for each tuple t ∈ Q_J \ Q'_J,
///    the body of Q' is instantiated with t (head variables) and fresh
///    blank nodes (existential variables) and added to J;
///  * per equivalence mapping c ≡ₑ c': the subject / predicate / object
///    neighbourhoods of c and c' are mutually copied (the six switch
///    blocks of Algorithm 1), preserving blank nodes (Q* semantics).
///
/// `out` must be empty and share the system's dictionary. Termination is
/// guaranteed (Theorem 1): newly created blank nodes never satisfy the
/// rt-guards of GMA bodies, so the chase is bounded; budgets exist to cap
/// runaway configurations in experiments.
///
/// Note on generalized RDF: a GMA whose head has an existential variable
/// in predicate position makes the chase mint a blank-node predicate, as
/// in the relational data-exchange semantics. Such triples are stored
/// (generalized RDF) and — being blank — never surface in certain answers.
Result<RpsChaseStats> BuildUniversalSolution(
    const RpsSystem& system, Graph* out,
    const RpsChaseOptions& options = RpsChaseOptions());

/// The chase loop proper, exposed for callers that prepare `j` themselves
/// (e.g. the union-find equivalence mode chases a canonicalized graph with
/// the graph mapping assertions only). `j` is chased in place to fixpoint.
Result<RpsChaseStats> ChaseGraph(
    Graph* j, const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options = RpsChaseOptions());

/// Delta-driven (semi-naive) chase: `j` must already be closed under the
/// mappings except for the triples in `delta` (which must already be
/// inserted into `j`). Only homomorphisms that use at least one delta
/// triple are considered per round; triples produced by a round form the
/// next round's delta. Equivalent to re-running ChaseGraph, at a cost
/// proportional to the consequences of the delta rather than to |J|.
Result<RpsChaseStats> ChaseGraphDelta(
    Graph* j, std::vector<Triple> delta,
    const std::vector<GraphMappingAssertion>& graph_mappings,
    const std::vector<EquivalenceMapping>& equivalences,
    const RpsChaseOptions& options = RpsChaseOptions());

}  // namespace rps

#endif  // RPS_CHASE_RPS_CHASE_H_
