#ifndef RPS_DISCOVERY_DISCOVERY_H_
#define RPS_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "peer/equivalence.h"
#include "peer/rps_system.h"

namespace rps {

/// Tuning knobs for automatic mapping discovery (§5 item 3 of the paper:
/// "We want to be able to discover mappings between peers automatically",
/// via techniques for schema/ontology alignment and uncertain mappings).
struct DiscoveryOptions {
  /// Minimum Jaccard similarity of two entities' literal-attribute sets
  /// for an equivalence proposal.
  double min_jaccard = 0.5;
  /// Minimum number of shared literal values (evidence floor).
  size_t min_shared_literals = 1;
  /// Literals occurring in more than this many entities per peer are
  /// treated as stop words and ignored during candidate generation.
  size_t max_literal_frequency = 50;
  /// Minimum containment |pairs(p) ∩ pairs(q)| / |pairs(p)| for a
  /// property-alignment proposal p ⇝ q.
  double min_containment = 0.8;
  /// Minimum number of witnessing pairs for a property alignment.
  size_t min_support = 2;
};

/// A proposed equivalence mapping with its evidence.
struct EquivalenceCandidate {
  TermId left = kInvalidTermId;
  TermId right = kInvalidTermId;
  /// Jaccard similarity of the two entities' literal sets.
  double score = 0.0;
  /// Number of shared literal values.
  size_t shared = 0;
  std::string left_peer;
  std::string right_peer;
};

/// A proposed single-triple graph mapping assertion
/// (x, from_prop, y) ⇝ (x, to_prop, y).
struct PropertyAlignment {
  TermId from_prop = kInvalidTermId;
  TermId to_prop = kInvalidTermId;
  /// |canonical pairs of from ∩ canonical pairs of to| / |pairs of from|.
  double containment = 0.0;
  size_t support = 0;
  std::string from_peer;
  std::string to_peer;
};

/// Proposes equivalence mappings between entities of different peers by
/// matching their literal attribute values: two IRIs whose literal
/// neighbourhoods overlap strongly (Jaccard ≥ min_jaccard, at least
/// min_shared_literals shared values) are proposed as co-referent.
/// Deterministic; candidates are sorted by descending score.
std::vector<EquivalenceCandidate> DiscoverEquivalences(
    const RpsSystem& system, const DiscoveryOptions& options =
                                 DiscoveryOptions());

/// Proposes single-triple graph mapping assertions between properties of
/// different peers: p (in peer A) aligns to q (in peer B) when, modulo
/// the given equivalence closure, almost every (subject, object) pair of
/// p also occurs under q. Both directions are tested independently
/// (containment is asymmetric, matching the ⇝ semantics).
std::vector<PropertyAlignment> DiscoverPropertyAlignments(
    const RpsSystem& system, const EquivalenceClosure& closure,
    const DiscoveryOptions& options = DiscoveryOptions());

/// Registers discovered mappings on the system: candidates become
/// equivalence mappings, alignments become graph mapping assertions
/// q(x,y) ← (x, from, y)  ⇝  q(x,y) ← (x, to, y).
/// Returns the number of mappings added.
Result<size_t> ApplyDiscovery(
    RpsSystem* system, const std::vector<EquivalenceCandidate>& equivalences,
    const std::vector<PropertyAlignment>& alignments);

/// Precision/recall of proposed equivalences against a ground truth
/// (order-insensitive pair matching).
struct DiscoveryEvaluation {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
};
DiscoveryEvaluation EvaluateEquivalences(
    const std::vector<EquivalenceCandidate>& proposed,
    const std::vector<EquivalenceMapping>& truth);

}  // namespace rps

#endif  // RPS_DISCOVERY_DISCOVERY_H_
