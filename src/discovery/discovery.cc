#include "discovery/discovery.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace rps {

namespace {

// The literal attribute profile of each IRI subject in one peer graph:
// subject -> set of literal object ids.
std::unordered_map<TermId, std::set<TermId>> LiteralProfiles(
    const Graph& graph) {
  const Dictionary& dict = *graph.dict();
  std::unordered_map<TermId, std::set<TermId>> profiles;
  for (const Triple& t : graph.triples()) {
    if (dict.IsLiteral(t.o) && dict.IsIri(t.s)) {
      profiles[t.s].insert(t.o);
    }
  }
  return profiles;
}

struct PairHash {
  size_t operator()(const std::pair<TermId, TermId>& p) const {
    return (static_cast<size_t>(p.first) << 32) ^ p.second;
  }
};

}  // namespace

std::vector<EquivalenceCandidate> DiscoverEquivalences(
    const RpsSystem& system, const DiscoveryOptions& options) {
  std::vector<EquivalenceCandidate> out;

  // Pre-compute per-peer profiles and literal -> entities inverted index.
  struct PeerData {
    std::string name;
    std::unordered_map<TermId, std::set<TermId>> profiles;
    std::unordered_map<TermId, std::vector<TermId>> by_literal;
  };
  std::vector<PeerData> peers;
  for (const auto& [name, graph] : system.dataset().graphs()) {
    PeerData data;
    data.name = name;
    data.profiles = LiteralProfiles(graph);
    for (const auto& [subject, literals] : data.profiles) {
      for (TermId literal : literals) {
        data.by_literal[literal].push_back(subject);
      }
    }
    peers.push_back(std::move(data));
  }

  // For each ordered peer pair, collect candidate entity pairs via shared
  // literals and score by Jaccard.
  for (size_t a = 0; a < peers.size(); ++a) {
    for (size_t b = a + 1; b < peers.size(); ++b) {
      std::unordered_map<std::pair<TermId, TermId>, size_t, PairHash>
          shared_counts;
      for (const auto& [literal, left_entities] : peers[a].by_literal) {
        if (left_entities.size() > options.max_literal_frequency) continue;
        auto it = peers[b].by_literal.find(literal);
        if (it == peers[b].by_literal.end()) continue;
        if (it->second.size() > options.max_literal_frequency) continue;
        for (TermId l : left_entities) {
          for (TermId r : it->second) {
            if (l == r) continue;  // shared IRIs are already co-referent
            ++shared_counts[{l, r}];
          }
        }
      }
      for (const auto& [pair, shared] : shared_counts) {
        if (shared < options.min_shared_literals) continue;
        size_t left_size = peers[a].profiles.at(pair.first).size();
        size_t right_size = peers[b].profiles.at(pair.second).size();
        double jaccard =
            static_cast<double>(shared) /
            static_cast<double>(left_size + right_size - shared);
        if (jaccard < options.min_jaccard) continue;
        EquivalenceCandidate candidate;
        candidate.left = pair.first;
        candidate.right = pair.second;
        candidate.score = jaccard;
        candidate.shared = shared;
        candidate.left_peer = peers[a].name;
        candidate.right_peer = peers[b].name;
        out.push_back(std::move(candidate));
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const EquivalenceCandidate& x, const EquivalenceCandidate& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.left != y.left) return x.left < y.left;
              return x.right < y.right;
            });
  return out;
}

std::vector<PropertyAlignment> DiscoverPropertyAlignments(
    const RpsSystem& system, const EquivalenceClosure& closure,
    const DiscoveryOptions& options) {
  const Dictionary& dict = *system.dict();
  std::optional<TermId> same_as =
      dict.Lookup(Term::Iri(std::string(kOwlSameAs)));

  // Canonicalized (subject, object) pair sets per (peer, property).
  struct PropData {
    std::string peer;
    TermId prop;
    std::set<std::pair<TermId, TermId>> pairs;
  };
  std::vector<PropData> properties;
  for (const auto& [name, graph] : system.dataset().graphs()) {
    std::map<TermId, std::set<std::pair<TermId, TermId>>> local;
    for (const Triple& t : graph.triples()) {
      if (same_as.has_value() && t.p == *same_as) continue;
      if (dict.IsLiteral(t.o)) continue;  // structural properties only
      local[t.p].insert({closure.Canon(t.s), closure.Canon(t.o)});
    }
    for (auto& [prop, pairs] : local) {
      properties.push_back(PropData{name, prop, std::move(pairs)});
    }
  }

  std::vector<PropertyAlignment> out;
  for (const PropData& from : properties) {
    if (from.pairs.size() < options.min_support) continue;
    for (const PropData& to : properties) {
      if (from.peer == to.peer) continue;  // cross-peer alignments only
      if (from.prop == to.prop) continue;
      size_t overlap = 0;
      for (const auto& pair : from.pairs) {
        if (to.pairs.count(pair) > 0) ++overlap;
      }
      if (overlap < options.min_support) continue;
      double containment =
          static_cast<double>(overlap) / static_cast<double>(from.pairs.size());
      if (containment < options.min_containment) continue;
      PropertyAlignment alignment;
      alignment.from_prop = from.prop;
      alignment.to_prop = to.prop;
      alignment.containment = containment;
      alignment.support = overlap;
      alignment.from_peer = from.peer;
      alignment.to_peer = to.peer;
      out.push_back(std::move(alignment));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PropertyAlignment& x, const PropertyAlignment& y) {
              if (x.containment != y.containment) {
                return x.containment > y.containment;
              }
              if (x.from_prop != y.from_prop) return x.from_prop < y.from_prop;
              return x.to_prop < y.to_prop;
            });
  return out;
}

Result<size_t> ApplyDiscovery(
    RpsSystem* system, const std::vector<EquivalenceCandidate>& equivalences,
    const std::vector<PropertyAlignment>& alignments) {
  size_t added = 0;
  for (const EquivalenceCandidate& candidate : equivalences) {
    RPS_RETURN_IF_ERROR(system->AddEquivalence(candidate.left,
                                               candidate.right));
    ++added;
  }
  VarPool* vars = system->vars();
  for (const PropertyAlignment& alignment : alignments) {
    VarId x = vars->Fresh("disc_x");
    VarId y = vars->Fresh("disc_y");
    GraphMappingAssertion gma;
    gma.label = "discovered:" + alignment.from_peer + "->" +
                alignment.to_peer;
    gma.from.head = {x, y};
    gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(alignment.from_prop),
                                    PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(alignment.to_prop),
                                  PatternTerm::Var(y)});
    RPS_RETURN_IF_ERROR(system->AddGraphMapping(std::move(gma)));
    ++added;
  }
  return added;
}

DiscoveryEvaluation EvaluateEquivalences(
    const std::vector<EquivalenceCandidate>& proposed,
    const std::vector<EquivalenceMapping>& truth) {
  auto normalize = [](TermId a, TermId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  std::set<std::pair<TermId, TermId>> truth_pairs;
  for (const EquivalenceMapping& eq : truth) {
    truth_pairs.insert(normalize(eq.left, eq.right));
  }
  std::set<std::pair<TermId, TermId>> proposed_pairs;
  for (const EquivalenceCandidate& c : proposed) {
    proposed_pairs.insert(normalize(c.left, c.right));
  }

  DiscoveryEvaluation eval;
  for (const auto& pair : proposed_pairs) {
    if (truth_pairs.count(pair) > 0) {
      ++eval.true_positives;
    } else {
      ++eval.false_positives;
    }
  }
  for (const auto& pair : truth_pairs) {
    if (proposed_pairs.count(pair) == 0) ++eval.false_negatives;
  }
  size_t proposed_total = eval.true_positives + eval.false_positives;
  size_t truth_total = eval.true_positives + eval.false_negatives;
  eval.precision = proposed_total == 0
                       ? 1.0
                       : static_cast<double>(eval.true_positives) /
                             static_cast<double>(proposed_total);
  eval.recall = truth_total == 0
                    ? 1.0
                    : static_cast<double>(eval.true_positives) /
                          static_cast<double>(truth_total);
  return eval;
}

}  // namespace rps
