#include "tgd/unification.h"

namespace rps {

AtomArg Resolve(const Subst& subst, AtomArg arg) {
  while (arg.is_var()) {
    auto it = subst.find(arg.var());
    if (it == subst.end()) return arg;
    arg = it->second;
  }
  return arg;
}

AtomArg ApplySubst(const Subst& subst, const AtomArg& arg) {
  return Resolve(subst, arg);
}

Atom ApplySubst(const Subst& subst, const Atom& atom) {
  Atom out;
  out.pred = atom.pred;
  out.args.reserve(atom.args.size());
  for (const AtomArg& arg : atom.args) {
    out.args.push_back(Resolve(subst, arg));
  }
  return out;
}

std::vector<Atom> ApplySubst(const Subst& subst,
                             const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    out.push_back(ApplySubst(subst, atom));
  }
  return out;
}

std::optional<Subst> Unify(const Atom& a, const Atom& b, Subst base) {
  if (a.pred != b.pred || a.args.size() != b.args.size()) {
    return std::nullopt;
  }
  Subst subst = std::move(base);
  for (size_t i = 0; i < a.args.size(); ++i) {
    AtomArg left = Resolve(subst, a.args[i]);
    AtomArg right = Resolve(subst, b.args[i]);
    if (left == right) continue;
    if (left.is_var()) {
      subst[left.var()] = right;
    } else if (right.is_var()) {
      subst[right.var()] = left;
    } else {
      return std::nullopt;  // distinct constants
    }
  }
  return subst;
}

Tgd RenameApart(const Tgd& tgd, VarPool* vars) {
  std::unordered_map<VarId, VarId> renaming;
  auto rename_atom = [&](const Atom& atom) {
    Atom out;
    out.pred = atom.pred;
    out.args.reserve(atom.args.size());
    for (const AtomArg& arg : atom.args) {
      if (!arg.is_var()) {
        out.args.push_back(arg);
        continue;
      }
      auto it = renaming.find(arg.var());
      if (it == renaming.end()) {
        VarId fresh = vars->Fresh("r");
        renaming.emplace(arg.var(), fresh);
        out.args.push_back(AtomArg::Var(fresh));
      } else {
        out.args.push_back(AtomArg::Var(it->second));
      }
    }
    return out;
  };

  Tgd out;
  out.label = tgd.label;
  out.body.reserve(tgd.body.size());
  for (const Atom& atom : tgd.body) out.body.push_back(rename_atom(atom));
  out.head.reserve(tgd.head.size());
  for (const Atom& atom : tgd.head) out.head.push_back(rename_atom(atom));
  return out;
}

}  // namespace rps
