#include "tgd/atom.h"

#include <cassert>

namespace rps {

PredId PredTable::Intern(const std::string& name, uint32_t arity) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    assert(arities_[it->second] == arity &&
           "predicate re-interned with a different arity");
    return it->second;
  }
  PredId id = static_cast<PredId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  index_.emplace(name, id);
  return id;
}

std::vector<VarId> Atom::Vars() const {
  std::vector<VarId> out;
  for (const AtomArg& arg : args) {
    if (!arg.is_var()) continue;
    bool seen = false;
    for (VarId v : out) {
      if (v == arg.var()) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(arg.var());
  }
  return out;
}

bool Atom::Mentions(VarId v) const {
  for (const AtomArg& arg : args) {
    if (arg.is_var() && arg.var() == v) return true;
  }
  return false;
}

std::string ToString(const Atom& atom, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars) {
  std::string out = preds.name(atom.pred) + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    const AtomArg& arg = atom.args[i];
    if (arg.is_var()) {
      out += "?" + vars.name(arg.var());
    } else {
      out += dict.ToString(arg.term());
    }
  }
  out += ")";
  return out;
}

}  // namespace rps
