#ifndef RPS_TGD_TGD_H_
#define RPS_TGD_TGD_H_

#include <set>
#include <string>
#include <vector>

#include "tgd/atom.h"

namespace rps {

/// A tuple-generating dependency ∀x φ(x) → ∃z ψ(x, z): `body` is the
/// conjunction φ, `head` the conjunction ψ. Variables in the head that do
/// not occur in the body are the existentially quantified z.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;
  /// Optional diagnostic label ("gma:Q2->Q1", "eq:subj:c->c'", ...).
  std::string label;

  /// Universally quantified variables: all body variables.
  std::set<VarId> UniversalVars() const;

  /// Existentially quantified variables: head variables absent from the
  /// body.
  std::set<VarId> ExistentialVars() const;

  /// Frontier: body variables that also occur in the head.
  std::set<VarId> FrontierVars() const;

  /// Total number of occurrences of `v` among the body atoms' arguments.
  size_t BodyOccurrences(VarId v) const;

  friend bool operator==(const Tgd& a, const Tgd& b) {
    return a.body == b.body && a.head == b.head;
  }
};

/// Renders `body -> head` for diagnostics.
std::string ToString(const Tgd& tgd, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars);

}  // namespace rps

#endif  // RPS_TGD_TGD_H_
