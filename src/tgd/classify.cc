#include "tgd/classify.h"

#include <unordered_map>
#include <unordered_set>

namespace rps {

bool IsLinear(const std::vector<Tgd>& tgds) {
  for (const Tgd& tgd : tgds) {
    if (tgd.body.size() != 1) return false;
  }
  return true;
}

bool IsGuarded(const std::vector<Tgd>& tgds) {
  for (const Tgd& tgd : tgds) {
    std::set<VarId> body_vars = tgd.UniversalVars();
    bool has_guard = false;
    for (const Atom& atom : tgd.body) {
      bool guards_all = true;
      for (VarId v : body_vars) {
        if (!atom.Mentions(v)) {
          guards_all = false;
          break;
        }
      }
      if (guards_all) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

std::set<std::pair<size_t, VarId>> StickyMarking(const std::vector<Tgd>& tgds,
                                                 const PredTable& preds) {
  (void)preds;  // arities are implicit in the atoms
  std::set<std::pair<size_t, VarId>> marked;

  // Initial step (Definition 4): for each TGD σ and variable V in body(σ),
  // if some head atom omits V, mark (σ, V).
  for (size_t i = 0; i < tgds.size(); ++i) {
    const Tgd& tgd = tgds[i];
    for (VarId v : tgd.UniversalVars()) {
      for (const Atom& head_atom : tgd.head) {
        if (!head_atom.Mentions(v)) {
          marked.insert({i, v});
          break;
        }
      }
    }
  }

  // Propagation: if a marked variable of body(σ) occurs at position π,
  // then in every TGD σ', mark the body variables of σ' that appear in
  // head(σ') at position π. Iterate to fixpoint.
  while (true) {
    // Positions where a marked variable occurs in some body.
    std::unordered_set<Position, PositionHash> marked_positions;
    for (const auto& [tgd_idx, var] : marked) {
      const Tgd& tgd = tgds[tgd_idx];
      for (const Atom& atom : tgd.body) {
        for (uint32_t arg_idx = 0; arg_idx < atom.args.size(); ++arg_idx) {
          const AtomArg& arg = atom.args[arg_idx];
          if (arg.is_var() && arg.var() == var) {
            marked_positions.insert(Position{atom.pred, arg_idx});
          }
        }
      }
    }

    bool changed = false;
    for (size_t i = 0; i < tgds.size(); ++i) {
      const Tgd& tgd = tgds[i];
      std::set<VarId> body_vars = tgd.UniversalVars();
      for (const Atom& head_atom : tgd.head) {
        for (uint32_t arg_idx = 0; arg_idx < head_atom.args.size();
             ++arg_idx) {
          const AtomArg& arg = head_atom.args[arg_idx];
          if (!arg.is_var()) continue;
          if (body_vars.find(arg.var()) == body_vars.end()) continue;
          if (marked_positions.count(Position{head_atom.pred, arg_idx}) ==
              0) {
            continue;
          }
          if (marked.insert({i, arg.var()}).second) changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return marked;
}

bool IsSticky(const std::vector<Tgd>& tgds, const PredTable& preds,
              TgdClassReport* report) {
  std::set<std::pair<size_t, VarId>> marked = StickyMarking(tgds, preds);
  for (const auto& [tgd_idx, var] : marked) {
    if (tgds[tgd_idx].BodyOccurrences(var) > 1) {
      if (report != nullptr) {
        report->sticky_violation_tgd = static_cast<int>(tgd_idx);
        report->sticky_violation_var = var;
      }
      return false;
    }
  }
  return true;
}

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const PredTable& preds) {
  (void)preds;
  // Build the position dependency graph. Edges are (from, to, special).
  struct Edge {
    Position to;
    bool special;
  };
  std::unordered_map<Position, std::vector<Edge>, PositionHash> graph;

  for (const Tgd& tgd : tgds) {
    std::set<VarId> existential = tgd.ExistentialVars();
    // Positions of each universal variable in the body.
    std::unordered_map<VarId, std::vector<Position>> body_positions;
    for (const Atom& atom : tgd.body) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].is_var()) {
          body_positions[atom.args[i].var()].push_back(
              Position{atom.pred, i});
        }
      }
    }
    for (const auto& [var, from_positions] : body_positions) {
      // Does this body variable occur in the head at all?
      bool in_head = false;
      for (const Atom& atom : tgd.head) {
        if (atom.Mentions(var)) {
          in_head = true;
          break;
        }
      }
      if (!in_head) continue;
      for (const Position& from : from_positions) {
        for (const Atom& atom : tgd.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            if (!atom.args[i].is_var()) continue;
            VarId head_var = atom.args[i].var();
            Position to{atom.pred, i};
            if (head_var == var) {
              graph[from].push_back(Edge{to, /*special=*/false});
            } else if (existential.count(head_var) > 0) {
              graph[from].push_back(Edge{to, /*special=*/true});
            }
          }
        }
      }
    }
  }

  // Not weakly acyclic iff some special edge (u -> v) lies on a cycle,
  // i.e. u is reachable from v.
  auto reachable = [&](const Position& from, const Position& target) {
    std::unordered_set<Position, PositionHash> visited;
    std::vector<Position> stack = {from};
    while (!stack.empty()) {
      Position cur = stack.back();
      stack.pop_back();
      if (cur == target) return true;
      if (!visited.insert(cur).second) continue;
      auto it = graph.find(cur);
      if (it == graph.end()) continue;
      for (const Edge& e : it->second) stack.push_back(e.to);
    }
    return false;
  };

  for (const auto& [from, edges] : graph) {
    for (const Edge& e : edges) {
      if (e.special && reachable(e.to, from)) return false;
    }
  }
  return true;
}

TgdClassReport ClassifyTgds(const std::vector<Tgd>& tgds,
                            const PredTable& preds) {
  TgdClassReport report;
  report.linear = IsLinear(tgds);
  report.guarded = IsGuarded(tgds);
  report.sticky = IsSticky(tgds, preds, &report);
  report.weakly_acyclic = IsWeaklyAcyclic(tgds, preds);
  report.sticky_join_sufficient = report.sticky || report.linear;
  return report;
}

std::string TgdClassReport::Summary() const {
  std::string out;
  auto add = [&](const char* name, bool value) {
    if (!out.empty()) out += ", ";
    out += name;
    out += value ? "=yes" : "=no";
  };
  add("linear", linear);
  add("guarded", guarded);
  add("sticky", sticky);
  add("weakly_acyclic", weakly_acyclic);
  add("sticky_join(sufficient)", sticky_join_sufficient);
  return out;
}

}  // namespace rps
