#ifndef RPS_TGD_CLASSIFY_H_
#define RPS_TGD_CLASSIFY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tgd/tgd.h"

namespace rps {

/// Result of running the syntactic TGD-class tests of §4 on a dependency
/// set. These classes bound the behaviour of chase and rewriting:
/// * sticky / linear / sticky-join → FO-rewritable (Proposition 2);
/// * weakly acyclic → terminating chase;
/// * none of them → the set may encode transitive closure
///   (Proposition 3) and admits no FO rewriting in general.
struct TgdClassReport {
  bool linear = false;
  bool guarded = false;
  bool sticky = false;
  bool weakly_acyclic = false;
  /// Sufficient condition only: sticky-join generalizes both sticky and
  /// linear, so `sticky || linear` implies sticky-join. False here means
  /// "not established", not "refuted".
  bool sticky_join_sufficient = false;

  /// For a non-sticky set: one (tgd index, variable) witness — a marked
  /// variable occurring more than once in that TGD's body.
  int sticky_violation_tgd = -1;
  VarId sticky_violation_var = 0;

  /// Human-readable one-line summary.
  std::string Summary() const;
};

/// Every TGD body has exactly one atom.
bool IsLinear(const std::vector<Tgd>& tgds);

/// Every TGD body has an atom mentioning all body variables.
bool IsGuarded(const std::vector<Tgd>& tgds);

/// The variable-marking test of Definition 4. `preds` supplies arities.
/// If `report` is non-null, fills in the violation witness on failure.
bool IsSticky(const std::vector<Tgd>& tgds, const PredTable& preds,
              TgdClassReport* report = nullptr);

/// Weak acyclicity (Fagin et al.): the position dependency graph has no
/// cycle through a special (existential) edge.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const PredTable& preds);

/// Runs all tests.
TgdClassReport ClassifyTgds(const std::vector<Tgd>& tgds,
                            const PredTable& preds);

/// The marked body-variable occurrences computed by the Definition 4
/// marking procedure, exposed for tests and the classification bench:
/// the set of (tgd index, variable) pairs that end up marked.
std::set<std::pair<size_t, VarId>> StickyMarking(const std::vector<Tgd>& tgds,
                                                 const PredTable& preds);

}  // namespace rps

#endif  // RPS_TGD_CLASSIFY_H_
