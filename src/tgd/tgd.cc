#include "tgd/tgd.h"

namespace rps {

std::set<VarId> Tgd::UniversalVars() const {
  std::set<VarId> out;
  for (const Atom& a : body) {
    for (VarId v : a.Vars()) out.insert(v);
  }
  return out;
}

std::set<VarId> Tgd::ExistentialVars() const {
  std::set<VarId> universal = UniversalVars();
  std::set<VarId> out;
  for (const Atom& a : head) {
    for (VarId v : a.Vars()) {
      if (universal.find(v) == universal.end()) out.insert(v);
    }
  }
  return out;
}

std::set<VarId> Tgd::FrontierVars() const {
  std::set<VarId> universal = UniversalVars();
  std::set<VarId> out;
  for (const Atom& a : head) {
    for (VarId v : a.Vars()) {
      if (universal.find(v) != universal.end()) out.insert(v);
    }
  }
  return out;
}

size_t Tgd::BodyOccurrences(VarId v) const {
  size_t count = 0;
  for (const Atom& a : body) {
    for (const AtomArg& arg : a.args) {
      if (arg.is_var() && arg.var() == v) ++count;
    }
  }
  return count;
}

std::string ToString(const Tgd& tgd, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars) {
  std::string out;
  if (!tgd.label.empty()) out += "[" + tgd.label + "] ";
  for (size_t i = 0; i < tgd.body.size(); ++i) {
    if (i > 0) out += " & ";
    out += ToString(tgd.body[i], preds, dict, vars);
  }
  out += " -> ";
  for (size_t i = 0; i < tgd.head.size(); ++i) {
    if (i > 0) out += " & ";
    out += ToString(tgd.head[i], preds, dict, vars);
  }
  return out;
}

}  // namespace rps
