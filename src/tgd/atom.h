#ifndef RPS_TGD_ATOM_H_
#define RPS_TGD_ATOM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/pattern.h"
#include "rdf/dictionary.h"

namespace rps {

/// Dense handle for an interned predicate symbol.
using PredId = uint32_t;

/// Interning table for relational predicate symbols with fixed arities.
/// The RPS→data-exchange encoding of §3 uses `tt/3` (triples of the
/// peer-to-peer database) and `rt/1` (identified resources); rewriting
/// normalization and the Proposition 3 construction add auxiliary
/// predicates.
class PredTable {
 public:
  PredTable() = default;
  PredTable(const PredTable&) = delete;
  PredTable& operator=(const PredTable&) = delete;

  /// Interns a predicate. If the name exists with a different arity the
  /// call aborts in debug builds (predicates are identified by name).
  PredId Intern(const std::string& name, uint32_t arity);

  const std::string& name(PredId id) const { return names_[id]; }
  uint32_t arity(PredId id) const { return arities_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, PredId> index_;
};

/// One argument of an atom: a variable or a constant term.
/// (Same representation idea as PatternTerm, kept distinct because atoms
/// and triple patterns live at different layers and evolve independently.)
class AtomArg {
 public:
  AtomArg() : is_var_(false), id_(kInvalidTermId) {}

  static AtomArg Var(VarId v) {
    AtomArg a;
    a.is_var_ = true;
    a.id_ = v;
    return a;
  }
  static AtomArg Const(TermId c) {
    AtomArg a;
    a.is_var_ = false;
    a.id_ = c;
    return a;
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }
  VarId var() const { return id_; }
  TermId term() const { return id_; }

  friend bool operator==(const AtomArg& a, const AtomArg& b) {
    return a.is_var_ == b.is_var_ && a.id_ == b.id_;
  }
  friend bool operator!=(const AtomArg& a, const AtomArg& b) {
    return !(a == b);
  }
  friend bool operator<(const AtomArg& a, const AtomArg& b) {
    if (a.is_var_ != b.is_var_) return a.is_var_ < b.is_var_;
    return a.id_ < b.id_;
  }

 private:
  bool is_var_;
  uint32_t id_;
};

/// A relational atom p(a1, ..., ak).
struct Atom {
  PredId pred = 0;
  std::vector<AtomArg> args;

  /// Variables of this atom, without duplicates, in argument order.
  std::vector<VarId> Vars() const;

  /// True if `v` occurs among the arguments.
  bool Mentions(VarId v) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.args == b.args;
  }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.args < b.args;
  }
};

/// Renders an atom as `p(?x, <iri>, "lit")` for diagnostics.
std::string ToString(const Atom& atom, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars);

/// A (pred, argument-index) pair — the "position r[i]" of Definition 4.
struct Position {
  PredId pred;
  uint32_t index;

  friend bool operator==(const Position& a, const Position& b) {
    return a.pred == b.pred && a.index == b.index;
  }
  friend bool operator<(const Position& a, const Position& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.index < b.index;
  }
};

struct PositionHash {
  size_t operator()(const Position& p) const {
    return (static_cast<size_t>(p.pred) << 8) ^ p.index;
  }
};

}  // namespace rps

#endif  // RPS_TGD_ATOM_H_
