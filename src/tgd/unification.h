#ifndef RPS_TGD_UNIFICATION_H_
#define RPS_TGD_UNIFICATION_H_

#include <optional>
#include <unordered_map>

#include "tgd/tgd.h"

namespace rps {

/// A substitution mapping variables to arguments (variables or constants).
/// Bindings may chain (x ↦ y, y ↦ c); Resolve follows chains.
using Subst = std::unordered_map<VarId, AtomArg>;

/// Follows variable chains in `subst` until a constant or an unbound
/// variable is reached.
AtomArg Resolve(const Subst& subst, AtomArg arg);

/// Applies `subst` to an argument / atom / TGD body, resolving chains.
AtomArg ApplySubst(const Subst& subst, const AtomArg& arg);
Atom ApplySubst(const Subst& subst, const Atom& atom);
std::vector<Atom> ApplySubst(const Subst& subst,
                             const std::vector<Atom>& atoms);

/// Computes a most general unifier of `a` and `b` (same predicate and
/// arity required), extending `base`. Returns std::nullopt if the atoms do
/// not unify. Variables of the two atoms are assumed to come from disjoint
/// namespaces unless the caller intends sharing.
std::optional<Subst> Unify(const Atom& a, const Atom& b, Subst base = {});

/// Renames all variables of `tgd` to fresh variables from `vars`,
/// returning the renamed copy. Used before unifying a query atom with a
/// TGD head so namespaces cannot collide.
Tgd RenameApart(const Tgd& tgd, VarPool* vars);

}  // namespace rps

#endif  // RPS_TGD_UNIFICATION_H_
