#ifndef RPS_REWRITE_REWRITER_H_
#define RPS_REWRITE_REWRITER_H_

#include <string>
#include <vector>

#include "query/eval.h"
#include "rdf/graph.h"
#include "tgd/unification.h"
#include "util/result.h"

namespace rps {

/// A conjunctive query over relational atoms, used by the rewriting
/// engine. Head arguments may be variables or constants: rewriting can
/// unify a distinguished variable with a constant, in which case the
/// constant is pinned in the head of the rewritten query.
struct ConjunctiveQuery {
  std::vector<AtomArg> head;
  std::vector<Atom> body;

  size_t arity() const { return head.size(); }
  bool is_boolean() const { return head.empty(); }

  /// Distinguished variables: head arguments that are variables.
  std::vector<VarId> HeadVars() const;

  friend bool operator==(const ConjunctiveQuery& a,
                         const ConjunctiveQuery& b) {
    return a.head == b.head && a.body == b.body;
  }
};

/// Converts a graph pattern query into a CQ over `tt/3` atoms.
ConjunctiveQuery FromGraphQuery(const GraphPatternQuery& q, PredId tt);

/// Converts back; fails if the head contains constants (SPARQL SELECT
/// cannot pin constants without extensions).
Result<GraphPatternQuery> ToGraphQuery(const ConjunctiveQuery& cq);

/// Renders a CQ for diagnostics.
std::string ToString(const ConjunctiveQuery& cq, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars);

/// Budgets and switches for RewriteUnderTgds.
struct RewriteOptions {
  /// Maximum number of distinct CQs explored. When exceeded the rewriting
  /// returns with complete=false — the signal used by the Proposition 3
  /// experiment (non-FO-rewritable sets never converge).
  size_t max_queries = 20000;
  /// Maximum queue pops.
  size_t max_steps = 200000;
  /// Subsumption-prune the final UCQ (ablation in E6).
  bool minimize = true;
  /// Also apply the factorization ("reduction") step: unify unifiable
  /// body-atom pairs of the same predicate. Needed for completeness
  /// beyond linear TGD sets.
  bool factorize = true;
};

/// Outcome of a rewriting run.
struct RewriteResult {
  /// The rewritten UCQ: all explored CQs free of auxiliary predicates.
  std::vector<ConjunctiveQuery> ucq;
  /// True iff the fixpoint was reached within budget, i.e. the UCQ is a
  /// perfect rewriting (Proposition 2 situations). False means the TGD
  /// set kept generating new CQs — the Proposition 3 behaviour.
  bool complete = false;
  size_t steps = 0;
  size_t generated = 0;    // distinct CQs generated (pre-minimization)
  size_t factorized = 0;   // distinct CQs produced by the factorization step
  size_t pruned = 0;       // CQs removed by subsumption minimization
};

/// Normalizes arbitrary TGDs into the restricted class required by
/// TGD-rewrite [13]: single-head-atom TGDs whose at most one existential
/// variable occurs exactly once. Multi-atom heads and multi-existential
/// TGDs are split through chains of fresh auxiliary predicates
/// ("aux_<n>"), which is the logspace reduction the paper invokes in §4.
/// Auxiliary predicates never occur in data or user queries, so certain
/// answers are preserved.
std::vector<Tgd> NormalizeTgds(const std::vector<Tgd>& tgds, PredTable* preds,
                               VarPool* vars);

/// Removes `guard` atoms (the rt(x) guards of the §3 encoding) from TGD
/// bodies — sound because D ⊨ ∀x rt(x) holds for the stored database, as
/// observed in §4 of the paper.
std::vector<Tgd> StripGuardAtoms(const std::vector<Tgd>& tgds, PredId guard);

/// UCQ rewriting by backward resolution (TGD-rewrite / XRewrite style):
/// repeatedly unifies a body atom of a CQ with the head of a (renamed-
/// apart) normalized TGD, subject to the applicability condition on
/// existential positions (the unified query term must be a non-
/// distinguished variable occurring exactly once in the CQ), replacing the
/// atom with the TGD body. CQs mentioning auxiliary predicates are
/// explored but not emitted. `tgds` must already be normalized.
Result<RewriteResult> RewriteUnderTgds(const ConjunctiveQuery& query,
                                       const std::vector<Tgd>& tgds,
                                       const PredTable& preds, VarPool* vars,
                                       const RewriteOptions& options =
                                           RewriteOptions());

/// Evaluates a UCQ of tt-atom CQs directly over an RDF graph: each CQ body
/// is matched as a BGP, head variables are projected (blank-valued answers
/// dropped), head constants are pinned. Results are deduplicated across
/// branches and sorted.
std::vector<Tuple> EvalUcqOverGraph(const Graph& graph,
                                    const std::vector<ConjunctiveQuery>& ucq,
                                    const EvalOptions& options =
                                        EvalOptions());

/// CQ subsumption: true iff `general` homomorphically maps into
/// `specific` with heads aligned — then every answer of `specific` is an
/// answer of `general` and `specific` can be pruned from a UCQ.
bool Subsumes(const ConjunctiveQuery& general,
              const ConjunctiveQuery& specific);

}  // namespace rps

#endif  // RPS_REWRITE_REWRITER_H_
