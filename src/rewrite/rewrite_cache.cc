#include "rewrite/rewrite_cache.h"

#include <cstring>

#include "query/answer_cache.h"

namespace rps {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

}  // namespace

RewriteCache::RewriteCache(const RewriteCacheOptions& options,
                           std::string label)
    : options_(options) {
  obs::Registry& reg = obs::Registry::Global();
  hits_total_ = reg.counter("cache.hits");
  hits_labeled_ = reg.counter(obs::WithLabel("cache.hits", label));
  misses_total_ = reg.counter("cache.misses");
  misses_labeled_ = reg.counter(obs::WithLabel("cache.misses", label));
  evictions_total_ = reg.counter("cache.evictions");
  evictions_labeled_ = reg.counter(obs::WithLabel("cache.evictions", label));
}

RewriteCache::CachedRewrite RewriteCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_total_->Add(1);
    misses_labeled_->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  hits_total_->Add(1);
  hits_labeled_->Add(1);
  return it->second.result;
}

void RewriteCache::Insert(std::string key, CachedRewrite result) {
  if (!result) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.result = std::move(result);
    return;
  }
  lru_.push_front(std::move(key));
  entries_.emplace(lru_.front(), Entry{std::move(result), lru_.begin()});
  while (options_.max_entries != 0 && entries_.size() > options_.max_entries) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    evictions_total_->Add(1);
    evictions_labeled_->Add(1);
  }
}

RewriteCacheStats RewriteCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RewriteCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

std::string RewriteCacheKey(const RpsSystem& system,
                            const GraphPatternQuery& query,
                            const RpsRewriteOptions& options) {
  // Semantics does not influence rewriting — fixed kDropBlanks tag.
  std::string key = CanonicalQueryKey(query, QuerySemantics::kDropBlanks);
  AppendU64(&key, system.mapping_version());
  AppendU64(&key, options.rewrite.max_queries);
  AppendU64(&key, options.rewrite.max_steps);
  key.push_back(options.rewrite.minimize ? 'm' : '-');
  key.push_back(options.rewrite.factorize ? 'f' : '-');
  key.push_back(options.equivalence_mode == EquivalenceRewriteMode::kCanonical
                    ? 'C'
                    : 'T');
  return key;
}

Result<RewriteCache::CachedRewrite> RewriteGraphQueryCached(
    const RpsSystem& system, const GraphPatternQuery& query,
    const RpsRewriteOptions& options, RewriteCache* cache) {
  std::string key;
  if (cache != nullptr) {
    key = RewriteCacheKey(system, query, options);
    if (RewriteCache::CachedRewrite hit = cache->Lookup(key)) {
      return hit;
    }
  }
  Result<RpsRewriteResult> fresh = RewriteGraphQuery(system, query, options);
  RPS_RETURN_IF_ERROR(fresh.status());
  auto shared =
      std::make_shared<const RpsRewriteResult>(std::move(fresh.value()));
  if (cache != nullptr) {
    cache->Insert(std::move(key), shared);
  }
  return RewriteCache::CachedRewrite(shared);
}

}  // namespace rps
