#include "rewrite/rewriter.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rps {

std::vector<VarId> ConjunctiveQuery::HeadVars() const {
  std::vector<VarId> out;
  for (const AtomArg& arg : head) {
    if (arg.is_var() &&
        std::find(out.begin(), out.end(), arg.var()) == out.end()) {
      out.push_back(arg.var());
    }
  }
  return out;
}

ConjunctiveQuery FromGraphQuery(const GraphPatternQuery& q, PredId tt) {
  ConjunctiveQuery cq;
  cq.head.reserve(q.head.size());
  for (VarId v : q.head) cq.head.push_back(AtomArg::Var(v));
  for (const TriplePattern& tp : q.body.patterns()) {
    Atom atom;
    atom.pred = tt;
    auto convert = [](const PatternTerm& pt) {
      return pt.is_var() ? AtomArg::Var(pt.var())
                         : AtomArg::Const(pt.term());
    };
    atom.args = {convert(tp.s), convert(tp.p), convert(tp.o)};
    cq.body.push_back(std::move(atom));
  }
  return cq;
}

Result<GraphPatternQuery> ToGraphQuery(const ConjunctiveQuery& cq) {
  GraphPatternQuery q;
  for (const AtomArg& arg : cq.head) {
    if (!arg.is_var()) {
      return Status::FailedPrecondition(
          "CQ head contains a constant; not expressible as a SPARQL SELECT");
    }
    q.head.push_back(arg.var());
  }
  for (const Atom& atom : cq.body) {
    if (atom.args.size() != 3) {
      return Status::FailedPrecondition(
          "CQ body contains a non-triple atom");
    }
    auto convert = [](const AtomArg& arg) {
      return arg.is_var() ? PatternTerm::Var(arg.var())
                          : PatternTerm::Const(arg.term());
    };
    q.body.Add(TriplePattern{convert(atom.args[0]), convert(atom.args[1]),
                             convert(atom.args[2])});
  }
  return q;
}

std::string ToString(const ConjunctiveQuery& cq, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars) {
  std::string out = "q(";
  for (size_t i = 0; i < cq.head.size(); ++i) {
    if (i > 0) out += ", ";
    const AtomArg& arg = cq.head[i];
    out += arg.is_var() ? "?" + vars.name(arg.var()) : dict.ToString(arg.term());
  }
  out += ") <- ";
  for (size_t i = 0; i < cq.body.size(); ++i) {
    if (i > 0) out += " & ";
    out += ToString(cq.body[i], preds, dict, vars);
  }
  return out;
}

std::vector<Tgd> StripGuardAtoms(const std::vector<Tgd>& tgds, PredId guard) {
  std::vector<Tgd> out;
  out.reserve(tgds.size());
  for (const Tgd& tgd : tgds) {
    Tgd stripped;
    stripped.label = tgd.label;
    stripped.head = tgd.head;
    for (const Atom& atom : tgd.body) {
      if (atom.pred != guard) stripped.body.push_back(atom);
    }
    if (stripped.body.empty()) {
      stripped.body = tgd.body;  // keep guards rather than a bodyless TGD
    }
    out.push_back(std::move(stripped));
  }
  return out;
}

namespace {

/// True if the TGD is already in the restricted class of [13]: one head
/// atom whose existential variables number at most one, occurring once.
bool IsRestricted(const Tgd& tgd) {
  if (tgd.head.size() != 1) return false;
  std::set<VarId> existential = tgd.ExistentialVars();
  if (existential.size() > 1) return false;
  if (existential.empty()) return true;
  VarId z = *existential.begin();
  size_t occurrences = 0;
  for (const AtomArg& arg : tgd.head[0].args) {
    if (arg.is_var() && arg.var() == z) ++occurrences;
  }
  return occurrences == 1;
}

}  // namespace

std::vector<Tgd> NormalizeTgds(const std::vector<Tgd>& tgds, PredTable* preds,
                               VarPool* vars) {
  (void)vars;  // variables are reused; aux atoms only permute existing ones
  std::vector<Tgd> out;
  size_t aux_counter = 0;
  for (const Tgd& tgd : tgds) {
    if (IsRestricted(tgd)) {
      out.push_back(tgd);
      continue;
    }
    // Chain normalization: body → aux_1(u, z1) → ... → aux_k(u, z) → h_i.
    std::vector<VarId> frontier;
    for (VarId v : tgd.FrontierVars()) frontier.push_back(v);
    std::vector<VarId> existential;
    for (VarId v : tgd.ExistentialVars()) existential.push_back(v);

    auto make_aux_atom = [&](size_t num_existentials) {
      std::string name = "aux_" + std::to_string(preds->size()) + "_" +
                         std::to_string(aux_counter);
      Atom atom;
      atom.pred = preds->Intern(
          name,
          static_cast<uint32_t>(frontier.size() + num_existentials));
      for (VarId v : frontier) atom.args.push_back(AtomArg::Var(v));
      for (size_t i = 0; i < num_existentials; ++i) {
        atom.args.push_back(AtomArg::Var(existential[i]));
      }
      ++aux_counter;
      return atom;
    };

    std::vector<Atom> chain_atoms;
    size_t links = existential.empty() ? 1 : existential.size();
    for (size_t i = 1; i <= links; ++i) {
      chain_atoms.push_back(
          make_aux_atom(existential.empty() ? 0 : i));
    }

    // body → first link.
    {
      Tgd link;
      link.label = tgd.label + ":aux0";
      link.body = tgd.body;
      link.head = {chain_atoms[0]};
      out.push_back(std::move(link));
    }
    // link i-1 → link i (introduces existential z_{i}).
    for (size_t i = 1; i < chain_atoms.size(); ++i) {
      Tgd link;
      link.label = tgd.label + ":aux" + std::to_string(i);
      link.body = {chain_atoms[i - 1]};
      link.head = {chain_atoms[i]};
      out.push_back(std::move(link));
    }
    // last link → each original head atom (no existentials remain).
    for (size_t i = 0; i < tgd.head.size(); ++i) {
      Tgd final_link;
      final_link.label = tgd.label + ":head" + std::to_string(i);
      final_link.body = {chain_atoms.back()};
      final_link.head = {tgd.head[i]};
      out.push_back(std::move(final_link));
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------
// Canonical keys for CQ deduplication. Variables are renamed by first
// occurrence over (head, then body atoms pre-sorted by a variable-
// independent shape); the result is rendered to a string.
std::string CanonicalKey(const ConjunctiveQuery& cq) {
  // Shape of an atom ignoring variable identity.
  auto shape = [](const Atom& atom) {
    std::string s = std::to_string(atom.pred) + "(";
    for (const AtomArg& arg : atom.args) {
      s += arg.is_var() ? "v," : "c" + std::to_string(arg.term()) + ",";
    }
    return s + ")";
  };
  std::vector<size_t> order(cq.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return shape(cq.body[a]) < shape(cq.body[b]);
  });

  std::unordered_map<VarId, uint32_t> renaming;
  auto canon_var = [&](VarId v) {
    auto it = renaming.find(v);
    if (it == renaming.end()) {
      it = renaming.emplace(v, static_cast<uint32_t>(renaming.size())).first;
    }
    return it->second;
  };
  auto render_arg = [&](const AtomArg& arg) {
    return arg.is_var() ? "V" + std::to_string(canon_var(arg.var()))
                        : "C" + std::to_string(arg.term());
  };

  std::string key = "H:";
  for (const AtomArg& arg : cq.head) key += render_arg(arg) + ",";
  key += "|B:";
  std::vector<std::string> rendered;
  for (size_t idx : order) {
    const Atom& atom = cq.body[idx];
    std::string r = std::to_string(atom.pred) + "(";
    for (const AtomArg& arg : atom.args) r += render_arg(arg) + ",";
    rendered.push_back(r + ")");
  }
  // Second sort pass now that variables have canonical names (stabilizes
  // ties among same-shape atoms).
  std::sort(rendered.begin(), rendered.end());
  for (const std::string& r : rendered) key += r + ";";
  return key;
}

// Removes duplicate atoms from a body.
void DedupAtoms(std::vector<Atom>* body) {
  std::vector<Atom> out;
  for (const Atom& atom : *body) {
    if (std::find(out.begin(), out.end(), atom) == out.end()) {
      out.push_back(atom);
    }
  }
  *body = std::move(out);
}

// Counts occurrences of variable v across all body atom arguments.
size_t CountOccurrences(const std::vector<Atom>& body, VarId v) {
  size_t count = 0;
  for (const Atom& atom : body) {
    for (const AtomArg& arg : atom.args) {
      if (arg.is_var() && arg.var() == v) ++count;
    }
  }
  return count;
}

// Applicability of resolving query atom `qa` with restricted TGD `tgd`
// (renamed apart): every existential position of the head must meet a
// non-distinguished query variable that occurs exactly once in the query.
bool Applicable(const ConjunctiveQuery& cq, const Atom& qa, const Tgd& tgd) {
  std::set<VarId> existential = tgd.ExistentialVars();
  if (existential.empty()) return true;
  std::set<VarId> distinguished;
  for (const AtomArg& arg : cq.head) {
    if (arg.is_var()) distinguished.insert(arg.var());
  }
  const Atom& head = tgd.head[0];
  for (size_t i = 0; i < head.args.size(); ++i) {
    const AtomArg& harg = head.args[i];
    if (!harg.is_var() || existential.count(harg.var()) == 0) continue;
    const AtomArg& qarg = qa.args[i];
    if (qarg.is_const()) return false;
    if (distinguished.count(qarg.var()) > 0) return false;
    if (CountOccurrences(cq.body, qarg.var()) != 1) return false;
  }
  return true;
}

bool UsesAuxPred(const ConjunctiveQuery& cq, const PredTable& preds) {
  for (const Atom& atom : cq.body) {
    if (preds.name(atom.pred).rfind("aux_", 0) == 0) return true;
  }
  return false;
}

}  // namespace

Result<RewriteResult> RewriteUnderTgds(const ConjunctiveQuery& query,
                                       const std::vector<Tgd>& tgds,
                                       const PredTable& preds, VarPool* vars,
                                       const RewriteOptions& options) {
  RewriteResult result;
  obs::Registry& reg = obs::Registry::Global();
  obs::ScopedTimerMs run_timer(reg.histogram("rewrite.run_ms"));
  obs::AutoSpan span("rewrite.ucq");
  std::deque<ConjunctiveQuery> queue;
  std::unordered_set<std::string> seen;
  std::vector<ConjunctiveQuery> explored;

  auto push = [&](ConjunctiveQuery cq) -> bool {
    DedupAtoms(&cq.body);
    std::string key = CanonicalKey(cq);
    if (!seen.insert(std::move(key)).second) return true;
    ++result.generated;
    if (seen.size() > options.max_queries) return false;
    explored.push_back(cq);
    queue.push_back(std::move(cq));
    return true;
  };

  bool budget_ok = push(query);

  while (budget_ok && !queue.empty()) {
    if (result.steps >= options.max_steps) {
      budget_ok = false;
      break;
    }
    ++result.steps;
    ConjunctiveQuery cq = std::move(queue.front());
    queue.pop_front();

    // Resolution: replace one body atom by a TGD body.
    for (size_t ai = 0; ai < cq.body.size() && budget_ok; ++ai) {
      for (const Tgd& tgd_orig : tgds) {
        if (tgd_orig.head.size() != 1) continue;  // must be normalized
        Tgd tgd = RenameApart(tgd_orig, vars);
        if (tgd.head[0].pred != cq.body[ai].pred) continue;
        if (!Applicable(cq, cq.body[ai], tgd)) continue;
        std::optional<Subst> mgu = Unify(cq.body[ai], tgd.head[0]);
        if (!mgu.has_value()) continue;

        ConjunctiveQuery rewritten;
        rewritten.head.reserve(cq.head.size());
        for (const AtomArg& arg : cq.head) {
          rewritten.head.push_back(Resolve(*mgu, arg));
        }
        for (size_t j = 0; j < cq.body.size(); ++j) {
          if (j == ai) continue;
          rewritten.body.push_back(ApplySubst(*mgu, cq.body[j]));
        }
        for (const Atom& atom : tgd.body) {
          rewritten.body.push_back(ApplySubst(*mgu, atom));
        }
        if (!push(std::move(rewritten))) {
          budget_ok = false;
          break;
        }
      }
    }

    // Factorization: unify same-predicate body atom pairs.
    if (options.factorize && budget_ok) {
      for (size_t i = 0; i < cq.body.size() && budget_ok; ++i) {
        for (size_t j = i + 1; j < cq.body.size() && budget_ok; ++j) {
          if (cq.body[i].pred != cq.body[j].pred) continue;
          std::optional<Subst> mgu = Unify(cq.body[i], cq.body[j]);
          if (!mgu.has_value()) continue;
          ConjunctiveQuery factored;
          for (const AtomArg& arg : cq.head) {
            factored.head.push_back(Resolve(*mgu, arg));
          }
          for (const Atom& atom : cq.body) {
            factored.body.push_back(ApplySubst(*mgu, atom));
          }
          size_t generated_before = result.generated;
          if (!push(std::move(factored))) budget_ok = false;
          if (result.generated > generated_before) ++result.factorized;
        }
      }
    }
  }

  result.complete = budget_ok;

  // Emit the auxiliary-free CQs.
  for (ConjunctiveQuery& cq : explored) {
    if (!UsesAuxPred(cq, preds)) {
      result.ucq.push_back(std::move(cq));
    }
  }

  if (options.minimize) {
    std::vector<bool> removed(result.ucq.size(), false);
    for (size_t i = 0; i < result.ucq.size(); ++i) {
      if (removed[i]) continue;
      for (size_t j = 0; j < result.ucq.size(); ++j) {
        if (i == j || removed[j]) continue;
        if (Subsumes(result.ucq[i], result.ucq[j])) {
          removed[j] = true;
          ++result.pruned;
        }
      }
    }
    std::vector<ConjunctiveQuery> kept;
    for (size_t i = 0; i < result.ucq.size(); ++i) {
      if (!removed[i]) kept.push_back(std::move(result.ucq[i]));
    }
    result.ucq = std::move(kept);
  }

  reg.counter("rewrite.runs")->Increment();
  reg.counter("rewrite.steps")->Add(result.steps);
  reg.counter("rewrite.generated")->Add(result.generated);
  reg.counter("rewrite.factorized")->Add(result.factorized);
  reg.counter("rewrite.pruned")->Add(result.pruned);
  reg.counter("rewrite.ucq_disjuncts")->Add(result.ucq.size());
  reg.counter(result.complete ? "rewrite.term.fixpoint"
                              : "rewrite.term.budget_exhausted")
      ->Increment();
  span.Annotate("steps", result.steps);
  span.Annotate("generated", result.generated);
  span.Annotate("ucq_disjuncts", result.ucq.size());
  return result;
}

bool Subsumes(const ConjunctiveQuery& general,
              const ConjunctiveQuery& specific) {
  if (general.head.size() != specific.head.size()) return false;

  // Homomorphism h: vars(general) → frozen terms of `specific`.
  // Frozen terms are represented as AtomArg (specific's variables are
  // treated as distinct constants).
  std::unordered_map<VarId, AtomArg> hom;

  // Heads must align: h(general.head[i]) == specific.head[i].
  for (size_t i = 0; i < general.head.size(); ++i) {
    const AtomArg& g = general.head[i];
    const AtomArg& s = specific.head[i];
    if (g.is_const()) {
      if (!(g == s)) return false;
    } else {
      auto it = hom.find(g.var());
      if (it != hom.end()) {
        if (!(it->second == s)) return false;
      } else {
        hom.emplace(g.var(), s);
      }
    }
  }

  // Backtracking over general's body atoms.
  std::function<bool(size_t)> match = [&](size_t idx) -> bool {
    if (idx == general.body.size()) return true;
    const Atom& g = general.body[idx];
    for (const Atom& s : specific.body) {
      if (s.pred != g.pred || s.args.size() != g.args.size()) continue;
      std::vector<VarId> bound;
      bool ok = true;
      for (size_t i = 0; i < g.args.size(); ++i) {
        const AtomArg& garg = g.args[i];
        const AtomArg& sarg = s.args[i];
        if (garg.is_const()) {
          if (!(garg == sarg)) {
            ok = false;
            break;
          }
          continue;
        }
        auto it = hom.find(garg.var());
        if (it != hom.end()) {
          if (!(it->second == sarg)) {
            ok = false;
            break;
          }
        } else {
          hom.emplace(garg.var(), sarg);
          bound.push_back(garg.var());
        }
      }
      if (ok && match(idx + 1)) return true;
      for (VarId v : bound) hom.erase(v);
    }
    return false;
  };
  return match(0);
}

std::vector<Tuple> EvalUcqOverGraph(const Graph& graph,
                                    const std::vector<ConjunctiveQuery>& ucq,
                                    const EvalOptions& options) {
  const Dictionary& dict = *graph.dict();
  std::vector<Tuple> out;
  for (const ConjunctiveQuery& cq : ucq) {
    GraphPattern gp;
    bool convertible = true;
    for (const Atom& atom : cq.body) {
      if (atom.args.size() != 3) {
        convertible = false;
        break;
      }
      auto convert = [](const AtomArg& arg) {
        return arg.is_var() ? PatternTerm::Var(arg.var())
                            : PatternTerm::Const(arg.term());
      };
      gp.Add(TriplePattern{convert(atom.args[0]), convert(atom.args[1]),
                           convert(atom.args[2])});
    }
    if (!convertible) continue;  // auxiliary leftovers are never evaluable
    BindingSet bindings = EvalGraphPattern(graph, gp, options);
    for (const Binding& b : bindings) {
      Tuple tuple;
      tuple.reserve(cq.head.size());
      bool keep = true;
      for (const AtomArg& arg : cq.head) {
        TermId value;
        if (arg.is_const()) {
          value = arg.term();
        } else {
          std::optional<TermId> bound = b.Get(arg.var());
          if (!bound.has_value()) {
            keep = false;
            break;
          }
          value = *bound;
        }
        if (dict.IsBlank(value)) {
          keep = false;
          break;
        }
        tuple.push_back(value);
      }
      if (keep) out.push_back(std::move(tuple));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rps
