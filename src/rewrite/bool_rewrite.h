#ifndef RPS_REWRITE_BOOL_REWRITE_H_
#define RPS_REWRITE_BOOL_REWRITE_H_

#include <vector>

#include "peer/rps_system.h"
#include "rewrite/rewriter.h"

namespace rps {

/// How the RPS-level rewriter treats equivalence mappings.
enum class EquivalenceRewriteMode {
  /// Canonicalize the query and the graph mapping assertions by
  /// equivalence clique (union-find) and rewrite under the GMA TGDs only.
  /// The resulting UCQ uses canonical terms: it must be evaluated over
  /// clique-canonicalized sources (each peer can canonicalize locally
  /// given the shared sameAs closure) and the answers expanded back over
  /// the cliques — which CertainAnswersViaRewriting and the Federator do.
  /// Tractable: avoids enumerating clique variants during resolution.
  kCanonical,
  /// Resolve the six equivalence TGDs like any other dependency — the
  /// literal §4 construction, demonstrated in Listing 2, producing a UCQ
  /// directly evaluable on the raw sources. Exponential in clique sizes
  /// (every join variable gets instantiated with clique constants); use
  /// for small queries / demonstrations and ablations.
  kTgdResolution,
};

/// Options for the RPS-level rewriting entry points.
struct RpsRewriteOptions {
  RewriteOptions rewrite;
  EquivalenceRewriteMode equivalence_mode =
      EquivalenceRewriteMode::kCanonical;
};

/// Result of rewriting a graph pattern query under the mappings of an
/// RPS (the Proposition 2 path: evaluate the rewriting over the sources
/// instead of materializing the universal solution).
struct RpsRewriteResult {
  /// The rewritten UCQ over tt atoms. In kTgdResolution mode it is
  /// directly evaluable on the raw stored database; in kCanonical mode
  /// its constants are canonical representatives and it must be evaluated
  /// over canonicalized sources (see `canonical_terms`).
  std::vector<ConjunctiveQuery> ucq;
  /// True when the UCQ is expressed in canonical representatives.
  bool canonical_terms = false;
  /// Statistics of the underlying rewriting run.
  RewriteResult stats;
};

/// Rewrites `query` under the target TGDs of `system` (§3 encoding with
/// the rt guards dropped — sound per §4 — and normalized to the
/// restricted class). If the mapping set is linear / sticky / sticky-join
/// the result is a perfect rewriting (Proposition 2) and stats.complete
/// is true; for non-FO-rewritable sets the budget is exhausted and
/// stats.complete is false (Proposition 3).
Result<RpsRewriteResult> RewriteGraphQuery(
    const RpsSystem& system, const GraphPatternQuery& query,
    const RpsRewriteOptions& options = RpsRewriteOptions());

/// Certain answers computed by rewriting: rewrite, then evaluate the UCQ
/// over the stored database D. Equals Algorithm 1's output whenever the
/// rewriting is complete.
struct RewriteAnswers {
  std::vector<Tuple> answers;
  RewriteResult stats;
};
Result<RewriteAnswers> CertainAnswersViaRewriting(
    const RpsSystem& system, const GraphPatternQuery& query,
    const RpsRewriteOptions& options = RpsRewriteOptions());

/// The Example 3 / Listing 2 flow: substitute `tuple` into `query` to
/// obtain a Boolean query, evaluate it over the sources (typically false),
/// rewrite it under the RPS mappings, and evaluate the rewritten union.
struct BooleanRewriteCheck {
  /// The Boolean (ASK) query with the tuple substituted.
  GraphPatternQuery boolean_query;
  /// ASK over the stored database before rewriting.
  bool value_before = false;
  /// ASK of the rewritten union over the stored database.
  bool value_after = false;
  /// Branches of the rewritten union expressible as SPARQL ASK queries.
  std::vector<GraphPatternQuery> rewritten_union;
  RewriteResult stats;
};
Result<BooleanRewriteCheck> CheckTupleByRewriting(
    const RpsSystem& system, const GraphPatternQuery& query,
    const Tuple& tuple,
    const RpsRewriteOptions& options = RpsRewriteOptions());

}  // namespace rps

#endif  // RPS_REWRITE_BOOL_REWRITE_H_
