#ifndef RPS_REWRITE_REWRITE_CACHE_H_
#define RPS_REWRITE_REWRITE_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "rewrite/bool_rewrite.h"
#include "util/result.h"

namespace rps {

/// Tuning knobs for a RewriteCache.
struct RewriteCacheOptions {
  bool enabled = false;
  /// Maximum memoized rewritings; LRU eviction past it. 0 = unbounded.
  size_t max_entries = 1024;
};

/// Point-in-time statistics of one RewriteCache instance.
struct RewriteCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Memoizes UCQ rewritings keyed by (query shape, mapping-set version,
/// rewrite options). Rewriting is a pure function of those three inputs
/// — the stored data plays no role — so versioning the key on
/// `RpsSystem::mapping_version()` makes explicit invalidation
/// unnecessary: a mapping change shifts every key, and entries for dead
/// versions age out through LRU eviction.
///
/// The query-shape key (CanonicalQueryKey) identifies queries up to a
/// bijective variable renaming. The memoized RpsRewriteResult is
/// therefore expressed in the *first* query's VarIds; since a UCQ branch
/// is a self-contained query whose answers are positional (head order)
/// and invariant under bijective renaming, every consumer that evaluates
/// the branches — Federator, CertainAnswersViaRewriting — gets
/// byte-identical answers. Consumers that correlate the result's VarIds
/// with their own query's VarIds must not use the cache.
///
/// Values are shared_ptr-to-const: a hit handed to a reader survives
/// concurrent eviction, and concurrent readers share one immutable UCQ.
///
/// Thread-safe. Emits the cache.{hits,misses,evictions} instruments
/// under the {cache=rewrite} label.
class RewriteCache {
 public:
  using CachedRewrite = std::shared_ptr<const RpsRewriteResult>;

  explicit RewriteCache(const RewriteCacheOptions& options,
                        std::string label = "rewrite");
  RewriteCache(const RewriteCache&) = delete;
  RewriteCache& operator=(const RewriteCache&) = delete;

  /// The memoized rewriting, or nullptr (miss). A hit refreshes the
  /// entry's LRU position.
  CachedRewrite Lookup(const std::string& key);

  /// Memoizes `result` under `key` (replacing any previous entry).
  void Insert(std::string key, CachedRewrite result);

  RewriteCacheStats Stats() const;

 private:
  struct Entry {
    CachedRewrite result;
    std::list<std::string>::iterator lru_it;
  };

  const RewriteCacheOptions options_;
  obs::Counter* hits_total_;
  obs::Counter* hits_labeled_;
  obs::Counter* misses_total_;
  obs::Counter* misses_labeled_;
  obs::Counter* evictions_total_;
  obs::Counter* evictions_labeled_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  RewriteCacheStats stats_;
};

/// The cache key for rewriting `query` against `system` under `options`:
/// canonical query shape + mapping-set version + an options fingerprint
/// (budgets, minimize/factorize, equivalence mode — each changes the
/// produced UCQ).
std::string RewriteCacheKey(const RpsSystem& system,
                            const GraphPatternQuery& query,
                            const RpsRewriteOptions& options);

/// RewriteGraphQuery memoized through `cache`: on a miss the rewriting
/// runs and (when successful) is inserted; on a hit the shared memoized
/// result is returned without touching the rewriting engine. A null or
/// disabled cache degrades to a plain uncached call.
Result<RewriteCache::CachedRewrite> RewriteGraphQueryCached(
    const RpsSystem& system, const GraphPatternQuery& query,
    const RpsRewriteOptions& options, RewriteCache* cache);

}  // namespace rps

#endif  // RPS_REWRITE_REWRITE_CACHE_H_
