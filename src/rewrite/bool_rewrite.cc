#include "rewrite/bool_rewrite.h"

#include "obs/trace.h"
#include "peer/equivalence.h"

namespace rps {

Result<RpsRewriteResult> RewriteGraphQuery(const RpsSystem& system,
                                           const GraphPatternQuery& query,
                                           const RpsRewriteOptions& options) {
  RPS_RETURN_IF_ERROR(query.Validate());
  obs::AutoSpan span("rewrite.graph_query");
  PredTable preds;
  PredId tt = preds.Intern("tt", 3);
  PredId rt = preds.Intern("rt", 1);
  VarPool* vars = system.vars();

  RpsRewriteResult result;

  if (options.equivalence_mode == EquivalenceRewriteMode::kTgdResolution) {
    std::vector<Tgd> target;
    system.CompileToTgds(&preds, /*source_to_target=*/nullptr, &target);
    std::vector<Tgd> stripped = StripGuardAtoms(target, rt);
    std::vector<Tgd> normalized = NormalizeTgds(stripped, &preds, vars);
    ConjunctiveQuery cq = FromGraphQuery(query, tt);
    RPS_ASSIGN_OR_RETURN(
        result.stats,
        RewriteUnderTgds(cq, normalized, preds, vars, options.rewrite));
    result.ucq = result.stats.ucq;
    return result;
  }

  // kCanonical: canonicalize query and GMAs by equivalence clique, rewrite
  // under the (guard-stripped, normalized) GMA TGDs only. The UCQ is in
  // canonical terms; the caller evaluates it over canonicalized sources
  // and expands the answers over the cliques.
  EquivalenceClosure closure(system.equivalences(), *system.dict());
  bool has_cliques = closure.CliqueCount() > 0;
  std::vector<GraphMappingAssertion> canonical_gmas;
  canonical_gmas.reserve(system.graph_mappings().size());
  for (const GraphMappingAssertion& gma : system.graph_mappings()) {
    canonical_gmas.push_back(closure.CanonicalizeMapping(gma));
  }
  std::vector<Tgd> target = CompileGmaTgds(canonical_gmas, tt, rt, vars);
  std::vector<Tgd> stripped = StripGuardAtoms(target, rt);
  std::vector<Tgd> normalized = NormalizeTgds(stripped, &preds, vars);

  ConjunctiveQuery cq = FromGraphQuery(closure.CanonicalizeQuery(query), tt);
  RPS_ASSIGN_OR_RETURN(
      result.stats,
      RewriteUnderTgds(cq, normalized, preds, vars, options.rewrite));
  result.ucq = result.stats.ucq;
  // Without cliques, canonicalization was the identity: the UCQ evaluates
  // directly over the raw sources and callers can skip the canonical copy.
  result.canonical_terms = has_cliques;
  return result;
}

Result<RewriteAnswers> CertainAnswersViaRewriting(
    const RpsSystem& system, const GraphPatternQuery& query,
    const RpsRewriteOptions& options) {
  obs::AutoSpan span("answer.rewrite");
  RPS_ASSIGN_OR_RETURN(RpsRewriteResult rewritten,
                       RewriteGraphQuery(system, query, options));
  RewriteAnswers out;
  obs::AutoSpan eval_span("rewrite.eval_ucq");
  Graph stored = system.StoredDatabase();
  if (rewritten.canonical_terms) {
    EquivalenceClosure closure(system.equivalences(), *system.dict());
    Graph canonical = closure.CanonicalizeGraph(stored);
    std::vector<Tuple> canonical_answers =
        EvalUcqOverGraph(canonical, rewritten.ucq);
    out.answers = closure.ExpandTuples(canonical_answers);
  } else {
    out.answers = EvalUcqOverGraph(stored, rewritten.ucq);
  }
  out.stats = std::move(rewritten.stats);
  return out;
}

Result<BooleanRewriteCheck> CheckTupleByRewriting(
    const RpsSystem& system, const GraphPatternQuery& query,
    const Tuple& tuple, const RpsRewriteOptions& options) {
  if (tuple.size() != query.arity()) {
    return Status::InvalidArgument(
        "tuple arity does not match the query arity");
  }
  BooleanRewriteCheck check;
  check.boolean_query = BindHead(query, tuple);

  Graph stored = system.StoredDatabase();
  check.value_before = EvalBoolean(stored, check.boolean_query,
                                   QuerySemantics::kDropBlanks);

  RPS_ASSIGN_OR_RETURN(
      RpsRewriteResult rewritten,
      RewriteGraphQuery(system, check.boolean_query, options));
  check.stats = std::move(rewritten.stats);

  if (rewritten.canonical_terms) {
    EquivalenceClosure closure(system.equivalences(), *system.dict());
    Graph canonical = closure.CanonicalizeGraph(stored);
    check.value_after = !EvalUcqOverGraph(canonical, rewritten.ucq).empty();
  } else {
    check.value_after = !EvalUcqOverGraph(stored, rewritten.ucq).empty();
  }

  for (const ConjunctiveQuery& cq : rewritten.ucq) {
    Result<GraphPatternQuery> branch = ToGraphQuery(cq);
    if (branch.ok()) {
      check.rewritten_union.push_back(std::move(branch).value());
    }
  }
  return check;
}

}  // namespace rps
