#include "server/query_server.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/dictionary.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

// Function-local statics: the registry hands out pointers that stay
// valid for the process lifetime, so the hot path pays one lazy init.
obs::Counter* AdmittedCounter() {
  static obs::Counter* c = obs::Registry::Global().counter("server.admitted");
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::Registry::Global().counter("server.rejected");
  return c;
}
obs::Counter* CompletedCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("server.completed");
  return c;
}
obs::Counter* DeadlineExceededCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("server.deadline_exceeded");
  return c;
}
obs::Counter* IngestedCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("server.ingested_triples");
  return c;
}
obs::Gauge* InflightGauge() {
  static obs::Gauge* g = obs::Registry::Global().gauge("server.inflight");
  return g;
}
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g = obs::Registry::Global().gauge("server.queue_depth");
  return g;
}
obs::Gauge* P50Gauge() {
  static obs::Gauge* g = obs::Registry::Global().gauge("server.p50_ms");
  return g;
}
obs::Gauge* P99Gauge() {
  static obs::Gauge* g = obs::Registry::Global().gauge("server.p99_ms");
  return g;
}
obs::Histogram* LatencyHistogram() {
  static obs::Histogram* h =
      obs::Registry::Global().histogram("server.latency_ms");
  return h;
}

}  // namespace

QueryServer::QueryServer(Graph* graph, const QueryServerOptions& options)
    : graph_(graph), options_(options) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.answer_cache.enabled) {
    // Seed the cache's known epoch with the preloaded prefix: everything
    // already in the graph predates every cacheable evaluation.
    cache_ = std::make_unique<AnswerCache>(options_.answer_cache, "answer",
                                           graph_->SnapshotEpoch());
  }
  // From here on queries overlap ingest: writers serialize behind the
  // graph's exclusive lock, snapshot reads take the shared lock.
  graph_->EnableConcurrentMutation();
  graph_->dict()->EnableConcurrentMutation();

  size_t workers = options_.worker_threads;
  host_ = std::thread([this, workers] {
    ThreadPool::Global().ParallelFor(workers, workers,
                                     [this](size_t) { WorkerLoop(); });
  });
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (host_.joinable()) host_.join();
}

Result<QueryResponse> QueryServer::Execute(const GraphPatternQuery& query) {
  return Execute(query, options_.default_deadline_ms);
}

Result<QueryResponse> QueryServer::Execute(const GraphPatternQuery& query,
                                           double deadline_ms) {
  RPS_RETURN_IF_ERROR(query.Validate());

  auto request = std::make_unique<Request>();
  request->query = query;
  request->budget =
      std::make_unique<EvalBudget>(deadline_ms, options_.max_scanned);
  request->admitted_at = std::chrono::steady_clock::now();
  std::future<QueryResponse> answer = request->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::FailedPrecondition("query server is stopped");
    }
    if (options_.max_queue != 0 && queue_.size() >= options_.max_queue) {
      RejectedCounter()->Increment();
      return Status::ResourceExhausted("query server admission queue full");
    }
    queue_.push_back(std::move(request));
    AdmittedCounter()->Increment();
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return answer.get();
}

size_t QueryServer::Ingest(const std::vector<Triple>& batch) {
  if (cache_ == nullptr) {
    size_t added = 0;
    // Graph mutators already serialize behind the graph's writer lock;
    // the per-triple loop just means a snapshot may land between two
    // triples of a batch — any prefix of an append-only graph is a
    // consistent state.
    for (const Triple& t : batch) {
      if (graph_->InsertUnchecked(t)) ++added;
    }
    IngestedCounter()->Add(added);
    return added;
  }
  // With the cache on, a batch's graph append and its ApplyDelta form one
  // atomic step: the cache's epoch protocol needs deltas reported in
  // insertion order, and the epoch read below must cover exactly this
  // batch. Queries never take ingest_mu_ — they read snapshots.
  std::lock_guard<std::mutex> lock(ingest_mu_);
  std::vector<Triple> fresh;
  fresh.reserve(batch.size());
  for (const Triple& t : batch) {
    if (graph_->InsertUnchecked(t)) fresh.push_back(t);
  }
  IngestedCounter()->Add(fresh.size());
  cache_->ApplyDelta(fresh, graph_->SnapshotEpoch());
  return fresh.size();
}

void QueryServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped_ and drained
      request = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    InflightGauge()->Add(1);
    QueryResponse response = Process(request.get());
    InflightGauge()->Add(-1);
    request->promise.set_value(std::move(response));
  }
}

QueryResponse QueryServer::Process(Request* request) {
  // The linearization point: every pattern of this query reads the graph
  // as of this epoch, whatever Ingest does meanwhile.
  GraphSnapshot snapshot(*graph_);
  obs::AutoSpan span("server.process");

  QueryResponse response;
  response.epoch = snapshot.epoch();

  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key =
        CanonicalQueryKey(request->query, QuerySemantics::kDropBlanks);
    if (AnswerCache::Answers hit =
            cache_->Lookup(cache_key, snapshot.epoch())) {
      // Byte-identical to evaluating at this snapshot: the entry was
      // computed at an epoch <= ours and every delta in between provably
      // missed its footprint.
      response.answers = *hit;
      response.cache_hit = true;
    }
  }
  if (!response.cache_hit) {
    EvalOptions eval = options_.eval;
    eval.plan_capture = nullptr;
    eval.budget = request->budget.get();
    response.answers = EvalQuery(snapshot, request->query,
                                 QuerySemantics::kDropBlanks, eval);
    SortTuples(&response.answers);
    response.budget_exceeded = request->budget->exceeded();
    // Partial (budget-tripped) answers are sound but not the full
    // snapshot answer — never cache them.
    if (cache_ != nullptr && !response.budget_exceeded) {
      cache_->Insert(std::move(cache_key), snapshot.epoch(),
                     QueryFootprint(request->query),
                     std::make_shared<const std::vector<Tuple>>(
                         response.answers));
    }
  }
  if (span.active()) {
    span.Annotate("epoch", static_cast<uint64_t>(response.epoch));
    if (cache_ != nullptr) {
      span.Annotate("cache", response.cache_hit ? "hit" : "miss");
    }
  }

  auto now = std::chrono::steady_clock::now();
  response.latency_ms = std::chrono::duration<double, std::milli>(
                            now - request->admitted_at)
                            .count();

  obs::Histogram* latency = LatencyHistogram();
  latency->Record(response.latency_ms);
  P50Gauge()->Set(static_cast<int64_t>(latency->Quantile(0.50)));
  P99Gauge()->Set(static_cast<int64_t>(latency->Quantile(0.99)));
  CompletedCounter()->Increment();
  if (response.budget_exceeded) DeadlineExceededCounter()->Increment();
  return response;
}

}  // namespace rps
