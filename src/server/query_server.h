#ifndef RPS_SERVER_QUERY_SERVER_H_
#define RPS_SERVER_QUERY_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "query/answer_cache.h"
#include "query/eval.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "util/result.h"

namespace rps {

/// Tuning knobs for a QueryServer.
struct QueryServerOptions {
  /// Number of queries executed simultaneously. Workers are hosted on the
  /// process-wide ThreadPool, so effective concurrency is additionally
  /// bounded by the pool size.
  size_t worker_threads = 4;
  /// Admission bound: Execute() calls beyond `max_queue` *waiting*
  /// requests are rejected immediately (kResourceExhausted) instead of
  /// building an unbounded backlog. 0 means unbounded.
  size_t max_queue = 1024;
  /// Default per-query wall-clock deadline in milliseconds, measured from
  /// admission (so time spent queued counts). <= 0 means no deadline.
  /// Overridable per call.
  double default_deadline_ms = 0.0;
  /// Per-query cap on scanned candidate rows. 0 means uncapped.
  size_t max_scanned = 0;
  /// Base evaluation options for every query. The budget and plan_capture
  /// fields are ignored — the server installs a fresh per-query budget.
  EvalOptions eval;
  /// Opt-in epoch-keyed certain-answer cache (answer_cache.h). When
  /// enabled, repeated queries at an unchanged-relevant epoch are served
  /// from the cache (byte-identical to a fresh evaluation, cache_hit set
  /// in the response) and every Ingest batch footprint-invalidates the
  /// affected entries. Disabled by default: the serving path is then
  /// exactly the uncached behaviour.
  AnswerCacheOptions answer_cache;
};

/// One served answer.
struct QueryResponse {
  /// Sorted, deduplicated answer tuples (SortTuples order), so responses
  /// are byte-comparable across runs, thread counts and epochs.
  std::vector<Tuple> answers;
  /// The snapshot epoch the query ran against: the answers are exactly
  /// EvalQuery over the graph's first `epoch` triples.
  size_t epoch = 0;
  /// True when the per-query budget tripped: `answers` is a sound but
  /// possibly incomplete subset of the full snapshot answer.
  bool budget_exceeded = false;
  /// True when the answers were served from the server's answer cache
  /// (only with QueryServerOptions::answer_cache enabled). Cached
  /// answers are byte-identical to a fresh evaluation at `epoch`.
  bool cache_hit = false;
  /// Admission-to-completion latency.
  double latency_ms = 0.0;
};

/// A concurrent query server over one (already chased) Graph: N worker
/// loops execute queries simultaneously while ingest appends triples,
/// with snapshot isolation — each query captures a GraphSnapshot at
/// execution start and every pattern of that query sees that frozen
/// epoch, so in-flight scans are never invalidated by appends or LSM
/// merges (docs/ARCHITECTURE.md "Concurrency & snapshots").
///
/// Scheduling is a bounded FIFO: requests are admitted in arrival order
/// and dispatched to the first free worker, so no query can be starved
/// by later arrivals (fairness), and arrivals beyond `max_queue` waiting
/// requests are rejected rather than queued unboundedly. Each query gets
/// a fresh EvalBudget (deadline / scan cap); a tripped budget returns
/// the sound partial answer with `budget_exceeded` set.
///
/// The constructor switches the graph and its dictionary into concurrent
/// mode (Graph::EnableConcurrentMutation) — do all single-threaded bulk
/// loading and chasing *before* constructing the server.
///
/// Instrumentation (docs/OBSERVABILITY.md): counters server.admitted /
/// server.rejected / server.completed / server.deadline_exceeded /
/// server.ingested_triples, gauges server.inflight / server.queue_depth /
/// server.p50_ms / server.p99_ms, histogram server.latency_ms.
class QueryServer {
 public:
  /// The graph must outlive the server.
  explicit QueryServer(Graph* graph,
                       const QueryServerOptions& options = QueryServerOptions());
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits the query (FIFO) and blocks until its answer is ready.
  /// Thread-safe: any number of client threads may call concurrently.
  /// Fails fast with kResourceExhausted when the waiting queue is full
  /// and kFailedPrecondition after Stop().
  Result<QueryResponse> Execute(const GraphPatternQuery& query);

  /// Same, overriding the default deadline (<= 0 means none).
  Result<QueryResponse> Execute(const GraphPatternQuery& query,
                                double deadline_ms);

  /// Appends a batch of (pre-validated, dictionary-encoded) triples.
  /// Returns the number of newly inserted triples. Ingest batches are
  /// serialized against each other; queries are never blocked for longer
  /// than one insert (they read snapshots). Safe to call concurrently
  /// with Execute().
  size_t Ingest(const std::vector<Triple>& batch);

  /// The current snapshot epoch (grows with ingest).
  size_t epoch() const { return graph_->SnapshotEpoch(); }

  const Graph& graph() const { return *graph_; }

  /// Stops admission, drains already-admitted queries, joins the workers.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The answer cache's statistics; zero-valued when the cache is off.
  AnswerCacheStats CacheStats() const {
    return cache_ ? cache_->Stats() : AnswerCacheStats{};
  }

 private:
  struct Request {
    GraphPatternQuery query;
    std::unique_ptr<EvalBudget> budget;
    std::chrono::steady_clock::time_point admitted_at;
    std::promise<QueryResponse> promise;
  };

  void WorkerLoop();
  QueryResponse Process(Request* request);

  Graph* graph_;
  QueryServerOptions options_;

  /// Epoch-keyed answer cache; null when options_.answer_cache.enabled
  /// is false (zero overhead on the default path).
  std::unique_ptr<AnswerCache> cache_;
  /// Serializes Ingest batches when the cache is on, so each batch's
  /// graph append and its ApplyDelta form one atomic step — deltas reach
  /// the cache in insertion order, which its epoch protocol requires.
  std::mutex ingest_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  bool stopped_ = false;

  // Hosts the worker loops on the global ThreadPool (one blocking
  // ParallelFor whose every index is a worker loop). join_mu_ makes
  // Stop() safe to call from several threads (join once).
  std::mutex join_mu_;
  std::thread host_;
};

}  // namespace rps

#endif  // RPS_SERVER_QUERY_SERVER_H_
