#include "datalog/program.h"

#include <set>

namespace rps {

Status DatalogRule::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument("Datalog rule '" + label +
                                   "' has an empty body");
  }
  std::set<VarId> body_vars;
  for (const Atom& atom : body) {
    for (VarId v : atom.Vars()) body_vars.insert(v);
  }
  for (VarId v : head.Vars()) {
    if (body_vars.find(v) == body_vars.end()) {
      return Status::InvalidArgument(
          "Datalog rule '" + label +
          "' is not range-restricted: a head variable is missing from the "
          "body");
    }
  }
  return Status::OK();
}

Status DatalogProgram::Validate() const {
  for (const DatalogRule& rule : rules) {
    RPS_RETURN_IF_ERROR(rule.Validate());
  }
  return Status::OK();
}

bool DatalogProgram::IsIntensional(PredId pred) const {
  for (const DatalogRule& rule : rules) {
    if (rule.head.pred == pred) return true;
  }
  return false;
}

std::string ToString(const DatalogRule& rule, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars) {
  std::string out = ToString(rule.head, preds, dict, vars) + " :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(rule.body[i], preds, dict, vars);
  }
  out += ".";
  if (!rule.label.empty()) out += "   % " + rule.label;
  return out;
}

std::string ToString(const DatalogProgram& program, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars) {
  std::string out;
  for (const DatalogRule& rule : program.rules) {
    out += ToString(rule, preds, dict, vars) + "\n";
  }
  return out;
}

}  // namespace rps
