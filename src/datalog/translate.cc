#include "datalog/translate.h"

#include <algorithm>

namespace rps {

Result<DatalogRewriting> CompileRpsToDatalog(const RpsSystem& system,
                                             PredTable* preds) {
  DatalogRewriting out;
  out.tt = preds->Intern("tt", 3);
  out.ts = preds->Intern("ts", 3);
  out.nonblank = preds->Intern("nonblank", 1);
  VarPool* vars = system.vars();

  // tt(x,y,z) :- ts(x,y,z).
  {
    VarId x = vars->Fresh("dl_x");
    VarId y = vars->Fresh("dl_y");
    VarId z = vars->Fresh("dl_z");
    DatalogRule copy;
    copy.label = "edb";
    copy.head = Atom{out.tt,
                     {AtomArg::Var(x), AtomArg::Var(y), AtomArg::Var(z)}};
    copy.body = {Atom{out.ts,
                      {AtomArg::Var(x), AtomArg::Var(y), AtomArg::Var(z)}}};
    out.program.rules.push_back(std::move(copy));
  }

  // Graph mapping assertions: require existential-free Q'.
  for (const GraphMappingAssertion& gma : system.graph_mappings()) {
    // Variables of Q' must all be covered by Q'-head; Q'-head vars are
    // identified with Q-head vars, which Q binds.
    std::vector<VarId> to_existentials = gma.to.ExistentialVars();
    if (!to_existentials.empty()) {
      return Status::FailedPrecondition(
          "graph mapping assertion '" + gma.label +
          "' has existential variables in Q'; Datalog has no value "
          "invention — use the chase for this system");
    }
    // Rename Q'-head vars to Q-head vars.
    std::unordered_map<VarId, VarId> renaming;
    for (size_t i = 0; i < gma.to.head.size(); ++i) {
      renaming[gma.to.head[i]] = gma.from.head[i];
    }
    std::vector<Atom> body;
    for (const TriplePattern& tp : gma.from.body.patterns()) {
      body.push_back(TriplePatternToAtom(tp, out.tt));
    }
    for (VarId head_var : gma.from.head) {
      body.push_back(Atom{out.nonblank, {AtomArg::Var(head_var)}});
    }
    for (size_t i = 0; i < gma.to.body.patterns().size(); ++i) {
      Atom head = TriplePatternToAtom(gma.to.body.patterns()[i], out.tt);
      for (AtomArg& arg : head.args) {
        if (arg.is_var()) {
          auto it = renaming.find(arg.var());
          arg = AtomArg::Var(it == renaming.end() ? arg.var() : it->second);
        }
      }
      DatalogRule rule;
      rule.label = (gma.label.empty() ? "gma" : gma.label) + ":" +
                   std::to_string(i);
      rule.head = std::move(head);
      rule.body = body;
      out.program.rules.push_back(std::move(rule));
    }
  }

  // Equivalence mappings: six copy rules each (blanks copied as-is, per
  // the Q* semantics of Definition 2 item 3 — no nonblank guards).
  for (const EquivalenceMapping& eq : system.equivalences()) {
    VarId y = vars->Fresh("dl_eq_y");
    VarId z = vars->Fresh("dl_eq_z");
    AtomArg vy = AtomArg::Var(y), vz = AtomArg::Var(z);
    AtomArg c = AtomArg::Const(eq.left), c2 = AtomArg::Const(eq.right);
    auto add = [&](const char* label, AtomArg b0, AtomArg b1, AtomArg b2,
                   AtomArg h0, AtomArg h1, AtomArg h2) {
      DatalogRule rule;
      rule.label = label;
      rule.head = Atom{out.tt, {h0, h1, h2}};
      rule.body = {Atom{out.tt, {b0, b1, b2}}};
      out.program.rules.push_back(std::move(rule));
    };
    add("eq:subj:l->r", c, vy, vz, c2, vy, vz);
    add("eq:subj:r->l", c2, vy, vz, c, vy, vz);
    add("eq:pred:l->r", vy, c, vz, vy, c2, vz);
    add("eq:pred:r->l", vy, c2, vz, vy, c, vz);
    add("eq:obj:l->r", vy, vz, c, vy, vz, c2);
    add("eq:obj:r->l", vy, vz, c2, vy, vz, c);
  }

  RPS_RETURN_IF_ERROR(out.program.Validate());
  return out;
}

Result<std::vector<Tuple>> DatalogCertainAnswers(
    const RpsSystem& system, const GraphPatternQuery& query,
    DatalogEvalStats* stats, const DatalogEvalOptions& options) {
  RPS_RETURN_IF_ERROR(query.Validate());
  PredTable preds;
  RPS_ASSIGN_OR_RETURN(DatalogRewriting rewriting,
                       CompileRpsToDatalog(system, &preds));

  // EDB: stored triples and non-blank terms.
  RelationalInstance database(&preds);
  Graph stored = system.StoredDatabase();
  const Dictionary& dict = *system.dict();
  for (const Triple& t : stored.triples()) {
    database.Insert(rewriting.ts, {t.s, t.p, t.o});
  }
  for (TermId id : stored.TermsInUse()) {
    if (!dict.IsBlank(id)) {
      database.Insert(rewriting.nonblank, {id});
    }
  }

  RPS_ASSIGN_OR_RETURN(DatalogEvalStats local_stats,
                       EvaluateDatalog(rewriting.program, &database,
                                       options));
  if (stats != nullptr) *stats = local_stats;

  // Evaluate the query over the tt relation, dropping blank answers.
  std::vector<Atom> body;
  for (const TriplePattern& tp : query.body.patterns()) {
    body.push_back(TriplePatternToAtom(tp, rewriting.tt));
  }
  std::vector<Tuple> answers;
  database.FindHomomorphisms(body, {}, [&](const VarAssignment& h) {
    Tuple tuple;
    tuple.reserve(query.head.size());
    for (VarId v : query.head) {
      TermId value = h.at(v);
      if (dict.IsBlank(value)) return true;  // drop
      tuple.push_back(value);
    }
    answers.push_back(std::move(tuple));
    return true;
  });
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace rps
