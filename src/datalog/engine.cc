#include "datalog/engine.h"

#include <algorithm>

namespace rps {

namespace {

// Matches `atom` against a concrete `row`, extending `assignment`.
// Returns false on mismatch; records newly bound vars in `newly_bound`
// so the caller can undo.
bool BindRow(const Atom& atom, const std::vector<TermId>& row,
             VarAssignment* assignment, std::vector<VarId>* newly_bound) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const AtomArg& arg = atom.args[i];
    if (arg.is_const()) {
      if (arg.term() != row[i]) return false;
      continue;
    }
    auto it = assignment->find(arg.var());
    if (it != assignment->end()) {
      if (it->second != row[i]) return false;
    } else {
      assignment->emplace(arg.var(), row[i]);
      newly_bound->push_back(arg.var());
    }
  }
  return true;
}

}  // namespace

Result<DatalogEvalStats> EvaluateDatalog(const DatalogProgram& program,
                                         RelationalInstance* database,
                                         const DatalogEvalOptions& options) {
  RPS_RETURN_IF_ERROR(program.Validate());
  DatalogEvalStats stats;
  const PredTable* preds = database->preds();

  // delta: the facts derived in the previous round (seeded with the whole
  // EDB so first-round joins see everything).
  RelationalInstance delta(preds);
  for (PredId p = 0; p < preds->size(); ++p) {
    for (const std::vector<TermId>& row : database->Facts(p)) {
      delta.Insert(p, row);
    }
  }

  while (true) {
    if (stats.rounds >= options.max_rounds) {
      return Status::ResourceExhausted("datalog: max_rounds reached");
    }
    ++stats.rounds;

    RelationalInstance next_delta(preds);
    for (const DatalogRule& rule : program.rules) {
      // Semi-naive: one body atom ranges over delta, the rest over the
      // full database. Iterate the choice of delta atom.
      for (size_t dj = 0; dj < rule.body.size(); ++dj) {
        const Atom& delta_atom = rule.body[dj];
        const auto& delta_rows = delta.Facts(delta_atom.pred);
        if (delta_rows.empty()) continue;

        std::vector<Atom> rest;
        rest.reserve(rule.body.size() - 1);
        for (size_t j = 0; j < rule.body.size(); ++j) {
          if (j != dj) rest.push_back(rule.body[j]);
        }

        for (const std::vector<TermId>& row : delta_rows) {
          VarAssignment assignment;
          std::vector<VarId> bound;
          if (!BindRow(delta_atom, row, &assignment, &bound)) continue;

          auto fire = [&](const VarAssignment& h) {
            ++stats.rule_firings;
            std::vector<TermId> head_row;
            head_row.reserve(rule.head.args.size());
            for (const AtomArg& arg : rule.head.args) {
              head_row.push_back(arg.is_const() ? arg.term()
                                                : h.at(arg.var()));
            }
            if (!database->Contains(rule.head.pred, head_row)) {
              next_delta.Insert(rule.head.pred, std::move(head_row));
            }
            return true;
          };
          if (rest.empty()) {
            fire(assignment);
          } else {
            database->FindHomomorphisms(rest, assignment, fire);
          }
        }
      }
    }

    // Merge the new facts; stop at fixpoint.
    size_t added = 0;
    for (PredId p = 0; p < preds->size(); ++p) {
      for (const std::vector<TermId>& row : next_delta.Facts(p)) {
        if (database->Insert(p, row)) ++added;
      }
    }
    stats.facts_derived += added;
    if (database->FactCount() > options.max_facts) {
      return Status::ResourceExhausted("datalog: max_facts reached");
    }
    if (added == 0) break;
    delta = std::move(next_delta);
  }

  stats.completed = true;
  return stats;
}

}  // namespace rps
