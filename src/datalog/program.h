#ifndef RPS_DATALOG_PROGRAM_H_
#define RPS_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "tgd/atom.h"
#include "util/result.h"

namespace rps {

/// A positive Datalog rule `head :- body1, ..., bodyn`. Pure Datalog: the
/// head may not introduce variables absent from the body (no value
/// invention — that is the chase's job).
struct DatalogRule {
  Atom head;
  std::vector<Atom> body;
  std::string label;

  /// Range restriction check: every head variable occurs in the body and
  /// the body is non-empty.
  Status Validate() const;
};

/// A positive Datalog program: rules plus the query predicates the caller
/// cares about. Predicates written by some rule head are intensional
/// (IDB); the rest are extensional (EDB).
struct DatalogProgram {
  std::vector<DatalogRule> rules;

  /// Validates every rule.
  Status Validate() const;

  /// True if `pred` appears in some rule head.
  bool IsIntensional(PredId pred) const;
};

/// Renders a rule / program in conventional syntax for diagnostics.
std::string ToString(const DatalogRule& rule, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars);
std::string ToString(const DatalogProgram& program, const PredTable& preds,
                     const Dictionary& dict, const VarPool& vars);

}  // namespace rps

#endif  // RPS_DATALOG_PROGRAM_H_
