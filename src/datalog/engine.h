#ifndef RPS_DATALOG_ENGINE_H_
#define RPS_DATALOG_ENGINE_H_

#include "chase/relational_chase.h"
#include "datalog/program.h"

namespace rps {

/// Statistics of a Datalog fixpoint computation.
struct DatalogEvalStats {
  size_t rounds = 0;
  size_t facts_derived = 0;
  size_t rule_firings = 0;  // head instantiations attempted
  bool completed = false;
};

/// Budgets for the fixpoint.
struct DatalogEvalOptions {
  size_t max_rounds = SIZE_MAX;
  size_t max_facts = 50'000'000;
};

/// Bottom-up semi-naive evaluation of a positive Datalog program:
/// `database` holds the EDB facts on entry and the full fixpoint (EDB +
/// IDB) on exit. Each round joins every rule body with at least one atom
/// ranging over the previous round's delta, so already-derived
/// combinations are never re-joined.
Result<DatalogEvalStats> EvaluateDatalog(
    const DatalogProgram& program, RelationalInstance* database,
    const DatalogEvalOptions& options = DatalogEvalOptions());

}  // namespace rps

#endif  // RPS_DATALOG_ENGINE_H_
