#ifndef RPS_DATALOG_TRANSLATE_H_
#define RPS_DATALOG_TRANSLATE_H_

#include <memory>

#include "datalog/engine.h"
#include "peer/rps_system.h"
#include "query/eval.h"

namespace rps {

/// The Datalog rewriting of an RPS (§5 item 1 of the paper: "a rewriting
/// algorithm that produces rewritten queries in a language more
/// expressive than FO-queries, for instance Datalog").
///
/// Applicability: every graph mapping assertion must be existential-free
/// (each variable of Q' also occurs in Q's head or body). Datalog has no
/// value invention, so existential heads need the chase; for
/// existential-free systems — including the transitive-closure mapping of
/// Proposition 3, which *no* FO rewriting can express — the Datalog
/// program computes exactly the universal solution's triples.
///
/// Rules produced over predicates {ts/3 (EDB), nonblank/1 (EDB),
/// tt/3 (IDB)}:
///   tt(x,y,z)      :- ts(x,y,z).
///   per GMA        : Q'body_i(x)  :- Qbody(x,y), nonblank(x1), ...
///   per c ≡ₑ c'    : six tt-copying rules.
struct DatalogRewriting {
  DatalogProgram program;
  PredId tt = 0;
  PredId ts = 0;
  PredId nonblank = 0;
};

/// Compiles the RPS into a Datalog program over `preds`. Fails with
/// FailedPrecondition if some graph mapping assertion has existential
/// variables in Q'.
Result<DatalogRewriting> CompileRpsToDatalog(const RpsSystem& system,
                                             PredTable* preds);

/// End-to-end certain answers through the Datalog engine: compile, load
/// the stored database as EDB facts (ts triples + nonblank terms),
/// evaluate to fixpoint, and evaluate the query over the tt relation
/// (blank-valued answers dropped). Identical to Algorithm 1 on
/// existential-free systems (property-tested).
Result<std::vector<Tuple>> DatalogCertainAnswers(
    const RpsSystem& system, const GraphPatternQuery& query,
    DatalogEvalStats* stats = nullptr,
    const DatalogEvalOptions& options = DatalogEvalOptions());

}  // namespace rps

#endif  // RPS_DATALOG_TRANSLATE_H_
