#ifndef RPS_RPS_RPS_H_
#define RPS_RPS_RPS_H_

/// Umbrella header for rpslib — a from-scratch C++ implementation of
/// "Peer-to-Peer Semantic Integration of Linked Data" (Dimartino, Calì,
/// Poulovassilis, Wood; EDBT/ICDT 2015 workshops).
///
/// Layering (each header is also usable on its own):
///  * rdf/      — terms, dictionary encoding, indexed triple store
///  * parser/   — N-Triples, Turtle and conjunctive-SPARQL parsers
///  * query/    — graph patterns, solution mappings, BGP evaluation
///  * tgd/      — relational atoms, TGDs, class tests (sticky, linear, …)
///  * chase/    — relational chase + Algorithm 1 (universal solutions)
///  * peer/     — RDF Peer Systems, certain answers, equivalence closure
///  * rewrite/  — UCQ perfect rewriting, Boolean-query rewriting
///  * federation/ — simulated peer network and federated execution
///  * server/   — snapshot-isolated concurrent query serving
///  * gen/      — synthetic workload generators and the paper's example
///  * obs/      — metrics counters, trace spans, EXPLAIN query reports

#include "chase/relational_chase.h"
#include "config/mapping_dsl.h"
#include "chase/rps_chase.h"
#include "datalog/engine.h"
#include "discovery/discovery.h"
#include "datalog/program.h"
#include "datalog/translate.h"
#include "federation/federator.h"
#include "federation/network.h"
#include "federation/peer_node.h"
#include "federation/subquery_cache.h"
#include "gen/generators.h"
#include "gen/paper_example.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/ntriples.h"
#include "parser/sparql.h"
#include "parser/turtle.h"
#include "peer/certain_answers.h"
#include "peer/equivalence.h"
#include "peer/incremental.h"
#include "peer/provenance.h"
#include "peer/mapping.h"
#include "peer/rps_system.h"
#include "peer/schema.h"
#include "query/algebra.h"
#include "query/answer_cache.h"
#include "query/binding.h"
#include "query/eval.h"
#include "query/pattern.h"
#include "query/plan.h"
#include "query/query.h"
#include "rdf/dataset.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rewrite/bool_rewrite.h"
#include "rewrite/rewrite_cache.h"
#include "server/query_server.h"
#include "rewrite/rewriter.h"
#include "storage/storage.h"
#include "tgd/atom.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"
#include "tgd/unification.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/union_find.h"

#endif  // RPS_RPS_RPS_H_
