#include "query/pattern.h"

namespace rps {

VarId VarPool::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  VarId id = static_cast<VarId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

VarId VarPool::Fresh(const std::string& prefix) {
  while (true) {
    std::string candidate = prefix + std::to_string(next_fresh_);
    ++next_fresh_;
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

std::vector<VarId> TriplePattern::Vars() const {
  std::vector<VarId> out;
  auto add = [&](const PatternTerm& t) {
    if (!t.is_var()) return;
    for (VarId v : out) {
      if (v == t.var()) return;
    }
    out.push_back(t.var());
  };
  add(s);
  add(p);
  add(o);
  return out;
}

std::set<VarId> GraphPattern::Vars() const {
  std::set<VarId> out;
  for (const TriplePattern& tp : patterns_) {
    for (VarId v : tp.Vars()) out.insert(v);
  }
  return out;
}

std::string ToString(const PatternTerm& t, const Dictionary& dict,
                     const VarPool& vars) {
  if (t.is_var()) return "?" + vars.name(t.var());
  return dict.ToString(t.term());
}

std::string ToString(const TriplePattern& tp, const Dictionary& dict,
                     const VarPool& vars) {
  return ToString(tp.s, dict, vars) + " " + ToString(tp.p, dict, vars) + " " +
         ToString(tp.o, dict, vars);
}

std::string ToString(const GraphPattern& gp, const Dictionary& dict,
                     const VarPool& vars) {
  std::string out;
  for (size_t i = 0; i < gp.patterns().size(); ++i) {
    if (i > 0) out += " . ";
    out += ToString(gp.patterns()[i], dict, vars);
  }
  return out;
}

}  // namespace rps
