#ifndef RPS_QUERY_QUERY_H_
#define RPS_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "query/pattern.h"
#include "util/result.h"

namespace rps {

/// A graph pattern query `q(x1,...,xn) ← GP` (§2.1). The head lists the
/// free variables; every other variable of the body is existentially
/// quantified. Arity-0 queries are Boolean (ASK) queries.
struct GraphPatternQuery {
  std::vector<VarId> head;
  GraphPattern body;

  size_t arity() const { return head.size(); }
  bool is_boolean() const { return head.empty(); }

  /// The existentially quantified variables: var(GP) minus the head.
  std::vector<VarId> ExistentialVars() const;

  /// Validates that every head variable occurs in the body (required by
  /// the paper's definition of graph pattern queries).
  Status Validate() const;

  friend bool operator==(const GraphPatternQuery& a,
                         const GraphPatternQuery& b) {
    return a.head == b.head && a.body == b.body;
  }
};

/// The special neighbourhood queries of §2.3, used by the semantics of
/// equivalence mappings:
///   subjQ(c) := q(x_pred, x_obj)  ← (c, x_pred, x_obj)
///   predQ(c) := q(x_subj, x_obj)  ← (x_subj, c, x_obj)
///   objQ(c)  := q(x_subj, x_pred) ← (x_subj, x_pred, c)
GraphPatternQuery SubjQ(TermId c, VarPool* vars);
GraphPatternQuery PredQ(TermId c, VarPool* vars);
GraphPatternQuery ObjQ(TermId c, VarPool* vars);

/// Substitutes the head variables of `q` with the constants of `tuple`
/// (same arity required), yielding the Boolean query "is `tuple` an answer
/// of q?" — the reduction used in Example 3 / Listing 2.
GraphPatternQuery BindHead(const GraphPatternQuery& q,
                           const std::vector<TermId>& tuple);

/// Renders the query as `q(?x, ?y) <- t1 . t2 . ...` for debugging.
std::string ToString(const GraphPatternQuery& q, const Dictionary& dict,
                     const VarPool& vars);

}  // namespace rps

#endif  // RPS_QUERY_QUERY_H_
