#ifndef RPS_QUERY_BINDING_H_
#define RPS_QUERY_BINDING_H_

#include <optional>
#include <utility>
#include <vector>

#include "query/pattern.h"
#include "rdf/triple.h"

namespace rps {

/// A solution mapping µ : V → (I ∪ B ∪ L) — a partial function from
/// variables to terms (Pérez et al. semantics, §2.1 of the paper).
///
/// Stored as a sorted vector of (var, term) pairs: bindings are tiny (a
/// handful of variables), so sorted-vector lookup beats hashing and gives
/// cheap equality and hashing for distinct-ing result sets.
class Binding {
 public:
  Binding() = default;

  /// Returns the value bound to `v`, if any.
  std::optional<TermId> Get(VarId v) const;

  bool Has(VarId v) const { return Get(v).has_value(); }

  /// Binds `v` to `value`. Returns false (and leaves the binding
  /// unchanged) if `v` is already bound to a different value.
  bool Bind(VarId v, TermId value);

  /// dom(µ) size.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted (var, term) pairs.
  const std::vector<std::pair<VarId, TermId>>& entries() const {
    return entries_;
  }

  /// Compatibility test of §2.1: µ1 and µ2 agree on dom(µ1) ∩ dom(µ2).
  static bool Compatible(const Binding& a, const Binding& b);

  /// µ1 ∪ µ2 when compatible, std::nullopt otherwise.
  static std::optional<Binding> Merge(const Binding& a, const Binding& b);

  friend bool operator==(const Binding& a, const Binding& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator<(const Binding& a, const Binding& b) {
    return a.entries_ < b.entries_;
  }

 private:
  std::vector<std::pair<VarId, TermId>> entries_;
};

struct BindingHash {
  size_t operator()(const Binding& b) const {
    size_t h = 1469598103934665603ULL;
    for (const auto& [var, term] : b.entries()) {
      h = (h ^ var) * 1099511628211ULL;
      h = (h ^ term) * 1099511628211ULL;
    }
    return h;
  }
};

/// A set of solution mappings Ω.
using BindingSet = std::vector<Binding>;

/// Extends `base` in place with the bindings induced by matching `tp`
/// against `t` (variable positions only — the caller guarantees constant
/// positions agree, as Graph::Match does). Returns false when a repeated
/// variable or an already-bound variable disagrees with the triple.
bool ExtendWithTriple(const TriplePattern& tp, const Triple& t,
                      Binding* base);

/// The match key of one pattern position under a partial binding: the
/// constant if const, the bound value if the variable is bound, else
/// wildcard.
std::optional<TermId> MatchKey(const PatternTerm& pt, const Binding& binding);

/// µ(tp): the concrete triple obtained by substituting `b` into the
/// pattern. Every variable of `tp` must be bound in `b`.
Triple SubstituteTriple(const TriplePattern& tp, const Binding& b);

/// The join Ω1 ⋈ Ω2 of Definition 1: all unions of compatible pairs.
/// Implemented as a hash join on the shared variables when both sides are
/// non-trivial, falling back to nested loops for small inputs.
BindingSet Join(const BindingSet& left, const BindingSet& right);

/// Removes duplicate bindings (set semantics for Ω).
void Dedup(BindingSet* bindings);

}  // namespace rps

#endif  // RPS_QUERY_BINDING_H_
