#include "query/eval.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "obs/metrics.h"
#include "query/plan.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

// Hot-path instrumentation: the counter pointers are resolved once (the
// registry never invalidates them) and bumped with one relaxed atomic add
// per evaluation call, on locally accumulated totals.
obs::Counter& PatternMatchCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.pattern_matches");
  return *c;
}
obs::Counter& BindingCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.bindings_produced");
  return *c;
}
obs::Counter& BgpEvalCounter() {
  static obs::Counter* c = obs::Registry::Global().counter("eval.bgp_evals");
  return *c;
}
obs::Counter& BudgetExceededCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.budget_exceeded");
  return *c;
}

// Seed sets smaller than this are extended serially: chunking overhead
// would dominate the join work.
constexpr size_t kMinSeedsForParallelJoin = 32;

}  // namespace

PlanCapture::PlanCapture() = default;
PlanCapture::~PlanCapture() = default;

void PlanCapture::Publish(QueryPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::make_unique<QueryPlan>(std::move(plan));
}

bool PlanCapture::has_plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_ != nullptr;
}

QueryPlan PlanCapture::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_ == nullptr) return QueryPlan();
  QueryPlan out = std::move(*plan_);
  plan_.reset();
  return out;
}

BindingSet EvalTriplePattern(const GraphSnapshot& graph,
                             const TriplePattern& tp) {
  BindingSet out;
  size_t scanned = 0;
  graph.Match(tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey(),
              [&](const Triple& t) {
                ++scanned;
                Binding b;
                if (ExtendWithTriple(tp, t, &b)) out.push_back(std::move(b));
                return true;
              });
  // Repeated variables within the pattern are checked by ExtendWithTriple
  // via Bind; duplicates cannot arise because triples are a set.
  PatternMatchCounter().Add(scanned);
  BindingCounter().Add(out.size());
  return out;
}

BindingSet ExtendBindings(const GraphSnapshot& graph,
                          const std::vector<TriplePattern>& patterns,
                          BindingSet seed, const EvalOptions& options) {
  BindingSet current = std::move(seed);
  if (patterns.empty() || current.empty()) return current;
  EvalBudget* budget = options.budget;

  if (options.use_plan) {
    // Cost-based plan engine: DP join ordering plus merge / leapfrog
    // operators where they are cheaper, with the output restored to this
    // probe loop's canonical emission order (byte-identical results).
    QueryPlan plan = PlanBgp(graph, patterns, current, options);
    BindingSet out = ExecutePlan(graph, &plan, std::move(current), options);
    if (options.plan_capture != nullptr) {
      options.plan_capture->Publish(std::move(plan));
    }
    if (budget != nullptr && budget->exceeded()) {
      BudgetExceededCounter().Increment();
    }
    return out;
  }

  std::vector<size_t> order;
  if (options.reorder_patterns) {
    order = OrderPatternsGreedy(graph, patterns, current);
  } else {
    order.resize(patterns.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  }

  // Extends every binding of `in` [lo, hi) through `tp`, appending to
  // `out` in input order. Returns the number of scanned candidates.
  // Charges the per-query budget one unit per candidate and unwinds as
  // soon as it trips (the partial output is sound; the caller reports
  // incompleteness through budget->exceeded()).
  auto extend_range = [&graph, budget](const TriplePattern& tp,
                                       const BindingSet& in, size_t lo,
                                       size_t hi, BindingSet* out) {
    size_t scanned = 0;
    for (size_t i = lo; i < hi; ++i) {
      if (budget != nullptr && budget->exceeded()) break;
      const Binding& b = in[i];
      graph.Match(MatchKey(tp.s, b), MatchKey(tp.p, b), MatchKey(tp.o, b),
                  [&](const Triple& t) {
                    ++scanned;
                    if (budget != nullptr && budget->Charge(1)) return false;
                    Binding extended = b;
                    if (ExtendWithTriple(tp, t, &extended)) {
                      out->push_back(std::move(extended));
                    }
                    return true;
                  });
    }
    return scanned;
  };

  size_t scanned = 0;
  size_t produced = 0;
  for (size_t idx : order) {
    if (budget != nullptr && budget->exceeded()) break;
    const TriplePattern& tp = patterns[idx];
    BindingSet next;
    if (options.threads > 1 && current.size() >= kMinSeedsForParallelJoin) {
      // Seed-partitioned parallel extension: contiguous chunks of the
      // seed set are joined concurrently against the (read-only) graph
      // into per-chunk buffers, then concatenated in chunk order — the
      // exact output order of the serial loop.
      size_t chunks = std::min(options.threads,
                               current.size() / (kMinSeedsForParallelJoin / 2));
      chunks = std::max<size_t>(chunks, 1);
      size_t per_chunk = (current.size() + chunks - 1) / chunks;
      std::vector<BindingSet> parts(chunks);
      std::vector<size_t> part_scans(chunks, 0);
      ThreadPool::Global().ParallelFor(
          chunks, options.threads, [&](size_t c) {
            size_t lo = c * per_chunk;
            size_t hi = std::min(current.size(), lo + per_chunk);
            part_scans[c] = extend_range(tp, current, lo, hi, &parts[c]);
          });
      size_t total = 0;
      for (const BindingSet& part : parts) total += part.size();
      next.reserve(total);
      for (size_t c = 0; c < chunks; ++c) {
        scanned += part_scans[c];
        std::move(parts[c].begin(), parts[c].end(),
                  std::back_inserter(next));
      }
    } else {
      scanned += extend_range(tp, current, 0, current.size(), &next);
    }
    produced += next.size();  // intermediate result size after this join
    current = std::move(next);
    if (current.empty()) break;
  }
  PatternMatchCounter().Add(scanned);
  BindingCounter().Add(produced);
  if (budget != nullptr && budget->exceeded()) {
    BudgetExceededCounter().Increment();
  }
  return current;
}

std::optional<Binding> MatchTriple(const TriplePattern& tp, const Triple& t) {
  Binding binding;
  if (!ExtendWithTriple(tp, t, &binding)) return std::nullopt;
  if (tp.s.is_const() && tp.s.term() != t.s) return std::nullopt;
  if (tp.p.is_const() && tp.p.term() != t.p) return std::nullopt;
  if (tp.o.is_const() && tp.o.term() != t.o) return std::nullopt;
  return binding;
}

BindingSet EvalGraphPattern(const GraphSnapshot& graph, const GraphPattern& gp,
                            const EvalOptions& options) {
  BgpEvalCounter().Increment();
  // ⟦empty AND⟧ = { µ∅ }: the neutral element of the join.
  if (gp.empty()) return {Binding()};
  return ExtendBindings(graph, gp.patterns(), {Binding()}, options);
}

std::vector<Tuple> EvalQuery(const GraphSnapshot& graph,
                             const GraphPatternQuery& q,
                             QuerySemantics semantics,
                             const EvalOptions& options) {
  BindingSet solutions = EvalGraphPattern(graph, q.body, options);
  std::vector<Tuple> out;
  std::unordered_set<Binding, BindingHash> seen;  // projected dedup
  const Dictionary& dict = *graph.dict();
  for (const Binding& b : solutions) {
    Tuple tuple;
    tuple.reserve(q.head.size());
    bool keep = true;
    Binding projected;
    for (VarId v : q.head) {
      std::optional<TermId> value = b.Get(v);
      if (!value.has_value()) {
        keep = false;  // head var unbound (cannot happen for valid queries)
        break;
      }
      if (semantics == QuerySemantics::kDropBlanks && dict.IsBlank(*value)) {
        keep = false;
        break;
      }
      tuple.push_back(*value);
      projected.Bind(v, *value);
    }
    if (!keep) continue;
    if (seen.insert(projected).second) {
      out.push_back(std::move(tuple));
    }
  }
  return out;
}

bool EvalBoolean(const GraphSnapshot& graph, const GraphPatternQuery& q,
                 QuerySemantics semantics, const EvalOptions& options) {
  if (q.head.empty()) {
    // Pure ASK: any solution of the body suffices.
    BindingSet solutions = EvalGraphPattern(graph, q.body, options);
    return !solutions.empty();
  }
  return !EvalQuery(graph, q, semantics, options).empty();
}

void SortTuples(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end());
}

}  // namespace rps
