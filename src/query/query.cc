#include "query/query.h"

#include <algorithm>

namespace rps {

std::vector<VarId> GraphPatternQuery::ExistentialVars() const {
  std::vector<VarId> out;
  for (VarId v : body.Vars()) {
    if (std::find(head.begin(), head.end(), v) == head.end()) {
      out.push_back(v);
    }
  }
  return out;
}

Status GraphPatternQuery::Validate() const {
  std::set<VarId> body_vars = body.Vars();
  for (VarId v : head) {
    if (body_vars.find(v) == body_vars.end()) {
      return Status::InvalidArgument(
          "head variable does not occur in the query body");
    }
  }
  return Status::OK();
}

GraphPatternQuery SubjQ(TermId c, VarPool* vars) {
  VarId xp = vars->Fresh("pred_");
  VarId xo = vars->Fresh("obj_");
  GraphPatternQuery q;
  q.head = {xp, xo};
  q.body.Add(TriplePattern{PatternTerm::Const(c), PatternTerm::Var(xp),
                           PatternTerm::Var(xo)});
  return q;
}

GraphPatternQuery PredQ(TermId c, VarPool* vars) {
  VarId xs = vars->Fresh("subj_");
  VarId xo = vars->Fresh("obj_");
  GraphPatternQuery q;
  q.head = {xs, xo};
  q.body.Add(TriplePattern{PatternTerm::Var(xs), PatternTerm::Const(c),
                           PatternTerm::Var(xo)});
  return q;
}

GraphPatternQuery ObjQ(TermId c, VarPool* vars) {
  VarId xs = vars->Fresh("subj_");
  VarId xp = vars->Fresh("pred_");
  GraphPatternQuery q;
  q.head = {xs, xp};
  q.body.Add(TriplePattern{PatternTerm::Var(xs), PatternTerm::Var(xp),
                           PatternTerm::Const(c)});
  return q;
}

GraphPatternQuery BindHead(const GraphPatternQuery& q,
                           const std::vector<TermId>& tuple) {
  std::unordered_map<VarId, TermId> map;
  for (size_t i = 0; i < q.head.size() && i < tuple.size(); ++i) {
    map[q.head[i]] = tuple[i];
  }
  auto substitute = [&](const PatternTerm& pt) {
    if (pt.is_var()) {
      auto it = map.find(pt.var());
      if (it != map.end()) return PatternTerm::Const(it->second);
    }
    return pt;
  };
  GraphPatternQuery out;  // Boolean: empty head
  for (const TriplePattern& tp : q.body.patterns()) {
    out.body.Add(TriplePattern{substitute(tp.s), substitute(tp.p),
                               substitute(tp.o)});
  }
  return out;
}

std::string ToString(const GraphPatternQuery& q, const Dictionary& dict,
                     const VarPool& vars) {
  std::string out = "q(";
  for (size_t i = 0; i < q.head.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + vars.name(q.head[i]);
  }
  out += ") <- ";
  out += ToString(q.body, dict, vars);
  return out;
}

}  // namespace rps
