#include "query/binding.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rps {

std::optional<TermId> Binding::Get(VarId v) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const std::pair<VarId, TermId>& e, VarId key) { return e.first < key; });
  if (it != entries_.end() && it->first == v) return it->second;
  return std::nullopt;
}

bool Binding::Bind(VarId v, TermId value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const std::pair<VarId, TermId>& e, VarId key) { return e.first < key; });
  if (it != entries_.end() && it->first == v) {
    return it->second == value;
  }
  entries_.insert(it, {v, value});
  return true;
}

bool Binding::Compatible(const Binding& a, const Binding& b) {
  // Merge-scan over the two sorted entry lists.
  size_t i = 0, j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    VarId va = a.entries_[i].first;
    VarId vb = b.entries_[j].first;
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      if (a.entries_[i].second != b.entries_[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

std::optional<Binding> Binding::Merge(const Binding& a, const Binding& b) {
  Binding out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    if (j == b.entries_.size() ||
        (i < a.entries_.size() && a.entries_[i].first < b.entries_[j].first)) {
      out.entries_.push_back(a.entries_[i++]);
    } else if (i == a.entries_.size() ||
               b.entries_[j].first < a.entries_[i].first) {
      out.entries_.push_back(b.entries_[j++]);
    } else {
      if (a.entries_[i].second != b.entries_[j].second) return std::nullopt;
      out.entries_.push_back(a.entries_[i++]);
      ++j;
    }
  }
  return out;
}

bool ExtendWithTriple(const TriplePattern& tp, const Triple& t,
                      Binding* base) {
  if (tp.s.is_var() && !base->Bind(tp.s.var(), t.s)) return false;
  if (tp.p.is_var() && !base->Bind(tp.p.var(), t.p)) return false;
  if (tp.o.is_var() && !base->Bind(tp.o.var(), t.o)) return false;
  return true;
}

std::optional<TermId> MatchKey(const PatternTerm& pt, const Binding& binding) {
  if (pt.is_const()) return pt.term();
  return binding.Get(pt.var());
}

Triple SubstituteTriple(const TriplePattern& tp, const Binding& b) {
  return Triple{tp.s.is_var() ? *b.Get(tp.s.var()) : tp.s.term(),
                tp.p.is_var() ? *b.Get(tp.p.var()) : tp.p.term(),
                tp.o.is_var() ? *b.Get(tp.o.var()) : tp.o.term()};
}

namespace {

// Key of the shared variables of a binding, for hash joins.
std::vector<TermId> KeyOf(const Binding& b, const std::vector<VarId>& vars) {
  std::vector<TermId> key;
  key.reserve(vars.size());
  for (VarId v : vars) {
    key.push_back(*b.Get(v));
  }
  return key;
}

struct KeyHash {
  size_t operator()(const std::vector<TermId>& key) const {
    size_t h = 1469598103934665603ULL;
    for (TermId t : key) h = (h ^ t) * 1099511628211ULL;
    return h;
  }
};

}  // namespace

BindingSet Join(const BindingSet& left, const BindingSet& right) {
  if (left.empty() || right.empty()) return {};

  // Shared variables: variables bound in the first binding of each side.
  // All bindings produced by evaluating one graph pattern share the same
  // domain, so sampling the first element is sound for pattern evaluation.
  // For robustness with heterogeneous domains we still re-check
  // compatibility on the full binding below.
  std::vector<VarId> shared;
  for (const auto& [var, _] : left[0].entries()) {
    if (right[0].Has(var)) shared.push_back(var);
  }

  BindingSet out;
  if (shared.empty()) {
    // Cross product.
    out.reserve(left.size() * right.size());
    for (const Binding& l : left) {
      for (const Binding& r : right) {
        auto merged = Binding::Merge(l, r);
        if (merged) out.push_back(std::move(*merged));
      }
    }
    return out;
  }

  // Hash join on the shared variables; build on the smaller side.
  const BindingSet& build = left.size() <= right.size() ? left : right;
  const BindingSet& probe = left.size() <= right.size() ? right : left;

  std::unordered_map<std::vector<TermId>, std::vector<const Binding*>, KeyHash>
      table;
  table.reserve(build.size());
  bool build_total = true;  // every build binding has all shared vars bound
  for (const Binding& b : build) {
    bool all_bound = true;
    for (VarId v : shared) {
      if (!b.Has(v)) {
        all_bound = false;
        break;
      }
    }
    if (!all_bound) {
      build_total = false;
      break;
    }
    table[KeyOf(b, shared)].push_back(&b);
  }

  if (!build_total) {
    // Heterogeneous domains: fall back to nested loops.
    for (const Binding& l : left) {
      for (const Binding& r : right) {
        auto merged = Binding::Merge(l, r);
        if (merged) out.push_back(std::move(*merged));
      }
    }
    return out;
  }

  for (const Binding& p : probe) {
    bool all_bound = true;
    for (VarId v : shared) {
      if (!p.Has(v)) {
        all_bound = false;
        break;
      }
    }
    if (!all_bound) {
      // Probe binding missing a shared var: compatible with any build
      // binding on that var; nested-loop against all build entries.
      for (const Binding& b : build) {
        auto merged = Binding::Merge(p, b);
        if (merged) out.push_back(std::move(*merged));
      }
      continue;
    }
    auto it = table.find(KeyOf(p, shared));
    if (it == table.end()) continue;
    for (const Binding* b : it->second) {
      auto merged = Binding::Merge(p, *b);
      if (merged) out.push_back(std::move(*merged));
    }
  }
  return out;
}

void Dedup(BindingSet* bindings) {
  std::unordered_set<Binding, BindingHash> seen;
  seen.reserve(bindings->size());
  BindingSet out;
  out.reserve(bindings->size());
  for (Binding& b : *bindings) {
    if (seen.insert(b).second) {
      out.push_back(std::move(b));
    }
  }
  *bindings = std::move(out);
}

}  // namespace rps
