#ifndef RPS_QUERY_ANSWER_CACHE_H_
#define RPS_QUERY_ANSWER_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "query/eval.h"
#include "query/query.h"
#include "rdf/triple.h"

namespace rps {

/// A canonical byte key for a graph pattern query: variables are
/// renumbered by first occurrence (head first, then body in s,p,o
/// order), so two queries that differ only in variable *names* share one
/// key — the "query shape". The semantics flag is folded in because
/// kDropBlanks and kKeepBlanks answers differ. Canonicalization never
/// reorders patterns: results are order-independent, but keeping the
/// written order makes the key a pure rename, trivially injective on
/// shapes.
std::string CanonicalQueryKey(const GraphPatternQuery& query,
                              QuerySemantics semantics);

/// One triple pattern of a cached evaluation's read footprint, reduced
/// to its match keys: nullopt = wildcard (a variable position), a TermId
/// = that constant.
struct PatternFootprint {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// The read footprint of a BGP query: its body patterns' match keys.
/// Soundness of footprint-based invalidation rests on monotonicity over
/// an append-only graph: a BGP answer set can only change between epochs
/// E < E' if some triple appended in [E, E') matches at least one body
/// pattern (every new answer's homomorphism must use a new triple, and
/// that triple must match the pattern it is assigned to). A delta triple
/// that matches no pattern of the footprint therefore cannot change the
/// answers, and the cached entry remains byte-identical at E'.
using QueryFootprintSet = std::vector<PatternFootprint>;

QueryFootprintSet QueryFootprint(const GraphPatternQuery& query);

/// True iff `t` matches at least one pattern of the footprint
/// (constant-wise; wildcard positions always match).
bool FootprintTouches(const QueryFootprintSet& footprint, const Triple& t);

/// Tuning knobs for an AnswerCache.
struct AnswerCacheOptions {
  /// Master switch — consumers (QueryServer, IncrementalUniversalSolution)
  /// construct a cache only when set, so the default serving path is
  /// byte-for-byte the uncached PR 7 behaviour.
  bool enabled = false;
  /// Maximum live entries; least-recently-used entries are evicted past
  /// it. 0 = unbounded.
  size_t max_entries = 4096;
  /// Total byte budget across all entries (answer payload + key +
  /// footprint, estimated). LRU eviction past it. 0 = unbounded.
  size_t max_bytes = 64ull << 20;
  /// Entries whose payload alone exceeds this are never cached (one
  /// pathological result set cannot wipe the whole cache). 0 = unbounded.
  size_t max_entry_bytes = 8ull << 20;
};

/// Point-in-time statistics of one AnswerCache instance (the global
/// `cache.*` instruments aggregate across instances; these are per
/// instance, for tests and EXPLAIN).
struct AnswerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// An epoch-keyed certain-answer / query-result cache with
/// footprint-based invalidation over an append-only graph.
///
/// Protocol (docs/ARCHITECTURE.md "Caching & invalidation"):
///  * Every entry records the epoch its answers were computed at and the
///    query's pattern footprint.
///  * Every ingest MUST be reported through ApplyDelta(new_triples,
///    new_epoch) — entries whose footprint a delta triple touches are
///    dropped (an `invalidation`); surviving entries are implicitly
///    promoted: the cache-wide `known_epoch` advances, and the invariant
///    "every live entry is valid at every epoch in [entry.epoch,
///    known_epoch]" is maintained without touching untouched entries
///    (their answers provably cannot have changed).
///  * Lookup(key, E) hits iff entry.epoch <= E <= known_epoch — the
///    served answers are byte-identical to a fresh evaluation at E.
///  * Insert with eval_epoch < known_epoch is dropped: deltas landed
///    after the evaluation's snapshot and were never checked against
///    this entry's footprint, so it may already be stale. Insert never
///    *advances* known_epoch either — vouching for epochs whose deltas
///    were not yet reported would let an unrelated insert resurrect a
///    stale sibling entry — so an entry inserted above known_epoch lies
///    dormant until the covering ApplyDelta arrives.
///
/// Invalidation cost is proportional to the entries that *could* be
/// touched, not the cache size: entries are bucketed by their constant
/// predicates, so a delta only walks the buckets of its own predicates
/// (plus the entries having a wildcard-predicate pattern, which every
/// triple may touch).
///
/// Thread-safe: all operations serialize on an internal mutex, and hits
/// hand out shared_ptr payloads, so an eviction or invalidation racing a
/// reader can never free answers out from under it.
class AnswerCache {
 public:
  using Answers = std::shared_ptr<const std::vector<Tuple>>;

  /// `label` names this instance in the labelled metrics dimension
  /// (`cache.hits{<label>}`, ...). `initial_epoch` is the graph's epoch
  /// at attach time: the preloaded prefix needs no invalidation, so the
  /// cache starts already valid through it.
  explicit AnswerCache(const AnswerCacheOptions& options,
                       std::string label = "answer",
                       size_t initial_epoch = 0);
  ~AnswerCache();
  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Answers valid exactly at `epoch`, or nullptr (miss). A hit
  /// refreshes the entry's LRU position.
  Answers Lookup(const std::string& key, size_t epoch);

  /// Caches `answers` as the result of evaluating the keyed query at
  /// `eval_epoch` over a graph whose reads the footprint covers.
  /// Replaces any previous entry under the key. Silently refuses stale
  /// inserts (eval_epoch < known_epoch) and oversized payloads.
  void Insert(std::string key, size_t eval_epoch,
              QueryFootprintSet footprint, Answers answers);

  /// Reports an ingest: `delta` are the triples newly appended (now at
  /// positions < new_epoch). Drops touched entries, advances
  /// known_epoch. Deltas must be reported in insertion order — consumers
  /// serialize their ingest path around graph-append + ApplyDelta.
  void ApplyDelta(const std::vector<Triple>& delta, size_t new_epoch);

  /// Drops every entry (mapping change, external bulk rebuild). The
  /// known epoch is advanced to `new_epoch`.
  void Clear(size_t new_epoch);

  /// The highest epoch invalidation has been applied through.
  size_t known_epoch() const;

  AnswerCacheStats Stats() const;

 private:
  struct Entry {
    size_t epoch = 0;
    QueryFootprintSet footprint;
    Answers answers;
    size_t bytes = 0;
    /// Position in lru_ (front = most recent).
    std::list<std::string>::iterator lru_it;
    /// True when the footprint has a wildcard-predicate pattern (the
    /// entry then lives in wildcard_keys_ instead of predicate buckets).
    bool wildcard_predicate = false;
  };

  // All private helpers assume mu_ is held.
  void EraseLocked(const std::string& key, bool counts_as_invalidation);
  void EvictToBudgetLocked();
  void IndexLocked(const std::string& key, const Entry& entry);
  void UnindexLocked(const std::string& key, const Entry& entry);

  const AnswerCacheOptions options_;
  const std::string label_;

  // cache.* instruments: the unlabeled aggregate plus this instance's
  // {cache=<label>} dimension, resolved once at construction (registry
  // pointers are stable for the process lifetime).
  obs::Counter* hits_total_;
  obs::Counter* hits_labeled_;
  obs::Counter* misses_total_;
  obs::Counter* misses_labeled_;
  obs::Counter* invalidations_total_;
  obs::Counter* invalidations_labeled_;
  obs::Counter* evictions_total_;
  obs::Counter* evictions_labeled_;
  obs::Gauge* bytes_total_;
  obs::Gauge* bytes_labeled_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  /// Constant-predicate buckets: predicate -> keys of entries with a
  /// pattern on that predicate. Entries with any wildcard-predicate
  /// pattern are in wildcard_keys_ and checked against every delta.
  std::unordered_map<TermId, std::unordered_set<std::string>> by_predicate_;
  std::unordered_set<std::string> wildcard_keys_;
  size_t bytes_ = 0;
  size_t known_epoch_ = 0;
  AnswerCacheStats stats_;
};

}  // namespace rps

#endif  // RPS_QUERY_ANSWER_CACHE_H_
