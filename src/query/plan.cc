#include "query/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "query/eval.h"
#include "rdf/trie_iterator.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

obs::Counter& DpPlanCounter() {
  static obs::Counter* c = obs::Registry::Global().counter("query.plan.dp_plans");
  return *c;
}
obs::Counter& FallbackCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.fallbacks");
  return *c;
}
obs::Counter& ProbeJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.probe_joins");
  return *c;
}
obs::Counter& MergeJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.merge_joins");
  return *c;
}
obs::Counter& LeapfrogJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.leapfrog_joins");
  return *c;
}
obs::Counter& WcojJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.wcoj_joins");
  return *c;
}
// The plan executor feeds the same eval.* counters as the probe loop so
// existing dashboards / tests see comparable scan and intermediate-size
// numbers regardless of engine.
obs::Counter& PatternMatchCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.pattern_matches");
  return *c;
}
obs::Counter& BindingCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.bindings_produced");
  return *c;
}

// ---------------------------------------------------------------------------
// Cost model (documented in docs/QUERY_PLANNING.md).
//
// All leaf statistics are *exact*: Graph::EstimateMatches is exact for
// every bound/unbound shape, and the per-position distinct counts are the
// posting-index sizes. Only join selectivities are estimated, with the
// classic System-R independence rule
//     |A ⋈ B| = |A| · |B| / Π_{v ∈ joinvars} max(d_A(v), d_B(v)).
// ---------------------------------------------------------------------------

// Abstract per-row cost of one index probe (hash lookups / binary
// searches) in the nested-loop operator.
constexpr double kProbeOverhead = 8.0;
// Per-triple cost of materializing a pattern extension for a merge join.
constexpr double kMaterializeCost = 1.0;
// Weight of the n·log2(n) sort terms of a merge join.
constexpr double kSortWeight = 0.25;

// Up to this many seeds are sampled (first / middle / last) when costing
// seeded pattern cardinalities.
constexpr size_t kSeedSamples = 3;

// Rebuilt from eval.cc: seed sets below this size are extended serially
// in the probe operator; chunking overhead would dominate.
constexpr size_t kMinRowsForParallelProbe = 32;

// Everything the planner needs, precomputed once per BGP.
struct PlanStats {
  size_t n = 0;
  double seed_rows = 1.0;
  std::vector<double> card_unseeded;        // exact |ext(tp_i)|
  std::vector<double> card_seeded;          // median per-seed cardinality
  std::vector<std::vector<VarId>> vars;     // vars of each pattern
  std::vector<VarId> seed_vars;             // dom of the sample seeds
  // Per-(pattern, variable) distinct-value upper bound: the position's
  // distinct count — tightened to the *predicate's* distinct subjects /
  // objects when the pattern's predicate is constant — capped by the
  // pattern's own cardinality. Kept per pattern (not as one global
  // minimum over all occurrences) so one highly selective pattern
  // cannot poison the join denominator of an unrelated wide pattern.
  std::vector<std::unordered_map<VarId, double>> d_pat;
};

// Running distinct-value bound per bound variable while a join order is
// costed: min over the already-joined patterns containing the var of
// their d_pat entry (seed variables start at the seed row count, a
// neutral bound). The map's keys double as the bound-variable set.
using DistinctMap = std::unordered_map<VarId, double>;

double DistinctAtPosition(const GraphSnapshot& graph, int position) {
  switch (position) {
    case 0:
      return static_cast<double>(std::max<size_t>(1, graph.DistinctSubjects()));
    case 1:
      return static_cast<double>(
          std::max<size_t>(1, graph.DistinctPredicates()));
    default:
      return static_cast<double>(std::max<size_t>(1, graph.DistinctObjects()));
  }
}

// Indices of up to kSeedSamples representative seeds: first, middle, last.
std::vector<size_t> SampleSeedIndices(size_t n_seeds) {
  std::vector<size_t> idx;
  if (n_seeds == 0) return idx;
  idx.push_back(0);
  if (n_seeds > 2) idx.push_back(n_seeds / 2);
  if (n_seeds > 1) idx.push_back(n_seeds - 1);
  return idx;
}

// Median of the pattern's exact cardinality under each sample seed. The
// median (not the first sample) keeps one unrepresentative seed — e.g. a
// hub node that matches everything — from mis-ordering the whole join.
size_t SeededCardinality(const GraphSnapshot& graph, const TriplePattern& tp,
                         const BindingSet& seeds,
                         const std::vector<size_t>& samples) {
  if (samples.empty()) {
    return graph.EstimateMatches(tp.s.AsMatchKey(), tp.p.AsMatchKey(),
                                 tp.o.AsMatchKey());
  }
  std::vector<size_t> cards;
  cards.reserve(samples.size());
  for (size_t si : samples) {
    const Binding& seed = seeds[si];
    cards.push_back(graph.EstimateMatches(
        MatchKey(tp.s, seed), MatchKey(tp.p, seed), MatchKey(tp.o, seed)));
  }
  std::sort(cards.begin(), cards.end());
  return cards[cards.size() / 2];
}

PlanStats ComputeStats(const GraphSnapshot& graph,
                       const std::vector<TriplePattern>& patterns,
                       const BindingSet& seeds) {
  PlanStats st;
  st.n = patterns.size();
  st.seed_rows = static_cast<double>(std::max<size_t>(1, seeds.size()));
  std::vector<size_t> samples = SampleSeedIndices(seeds.size());
  st.card_unseeded.reserve(st.n);
  st.card_seeded.reserve(st.n);
  st.vars.reserve(st.n);
  for (const TriplePattern& tp : patterns) {
    st.card_unseeded.push_back(static_cast<double>(graph.EstimateMatches(
        tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey())));
    st.card_seeded.push_back(
        static_cast<double>(SeededCardinality(graph, tp, seeds, samples)));
    st.vars.push_back(tp.Vars());
    st.d_pat.emplace_back();
    int position = 0;
    for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
      if (pt->is_var()) {
        double d = DistinctAtPosition(graph, position);
        if (position != 1 && tp.p.is_const()) {
          // A constant predicate tightens the position-wide bound to the
          // distinct subjects / objects *of that predicate* — exactly the
          // skew signal that separates hub predicates from sparse ones.
          Graph::PredDistinct pd = graph.PredicateDistincts(tp.p.term());
          double dp =
              static_cast<double>(position == 0 ? pd.subjects : pd.objects);
          d = std::min(d, std::max(1.0, dp));
        }
        d = std::min(d, std::max(1.0, st.card_unseeded.back()));
        auto [it, inserted] = st.d_pat.back().try_emplace(pt->var(), d);
        if (!inserted) it->second = std::min(it->second, d);
      }
      ++position;
    }
  }
  if (!seeds.empty()) {
    for (const auto& [var, term] : seeds.front().entries()) {
      st.seed_vars.push_back(var);
    }
  }
  return st;
}

// Seed-variable initialization for a DistinctMap.
DistinctMap SeedDistincts(const PlanStats& st) {
  DistinctMap bound;
  for (VarId v : st.seed_vars) bound.try_emplace(v, st.seed_rows);
  return bound;
}

// Folds pattern j's distinct bounds into the running map after it joins.
void BindPattern(const PlanStats& st, size_t j, DistinctMap* bound) {
  for (VarId v : st.vars[j]) {
    double d = st.d_pat[j].at(v);
    auto [it, inserted] = bound->try_emplace(v, d);
    if (!inserted) it->second = std::min(it->second, d);
  }
}

// Join-selectivity denominator and output estimate for joining pattern j
// into an intermediate of `rows` rows whose bound variables are `bound`.
struct JoinEstimate {
  std::vector<VarId> join_vars;
  double out_rows = 0.0;
};

JoinEstimate EstimateJoin(const PlanStats& st, double rows,
                          const DistinctMap& bound, size_t j) {
  JoinEstimate est;
  double denom = 1.0;
  for (VarId v : st.vars[j]) {
    auto it = bound.find(v);
    if (it == bound.end()) continue;
    est.join_vars.push_back(v);
    double d_pattern = std::max(1.0, st.d_pat[j].at(v));
    double d_inter = std::min(rows, it->second);
    denom *= std::max({d_pattern, d_inter, 1.0});
  }
  est.out_rows = rows * st.card_unseeded[j] / denom;
  return est;
}

double ProbeCost(double rows, double out_rows) {
  return rows * kProbeOverhead + out_rows;
}

double MergeCost(double rows, double card_unseeded, double out_rows) {
  double sort_ext =
      card_unseeded * std::log2(std::max(2.0, card_unseeded)) * kSortWeight;
  double sort_rows = rows * std::log2(std::max(2.0, rows)) * kSortWeight;
  return card_unseeded * kMaterializeCost + sort_ext + sort_rows + out_rows;
}

// Chooses the cheaper physical operator for one join step and returns
// (op, cost). The first step over the trivial seed {µ∅} is a plain range
// scan; merge never wins there (rows == 1 makes the probe side free).
std::pair<PlanOp, double> ChooseOperator(double rows, double card_unseeded,
                                         double out_rows, bool has_join_vars) {
  double probe = ProbeCost(rows, out_rows);
  if (!has_join_vars) {
    // Cross product: probing scans the whole extension once per row;
    // merge materializes it once. Probe only wins for tiny extensions.
    probe = rows * kProbeOverhead + rows * card_unseeded;
  }
  if (rows <= 1.0) {
    // A one-row intermediate touches exactly the matching index range
    // with a single probe; materializing and sorting the whole extension
    // can never beat that.
    return {PlanOp::kProbeJoin, probe};
  }
  double merge = MergeCost(rows, card_unseeded, out_rows);
  if (merge < probe) return {PlanOp::kMergeJoin, merge};
  return {PlanOp::kProbeJoin, probe};
}

// Builds plan steps for a fixed join order by choosing the operator per
// step with a running cardinality estimate. Used by the greedy fallback
// and the reorder_patterns=false (textual order) path.
std::vector<PlanStep> StepsForOrder(const PlanStats& st,
                                    const std::vector<size_t>& order,
                                    double* total_cost) {
  std::vector<PlanStep> steps;
  steps.reserve(order.size());
  DistinctMap bound = SeedDistincts(st);
  double rows = st.seed_rows;
  double cost = 0.0;
  bool first = true;
  for (size_t j : order) {
    PlanStep step;
    step.patterns = {j};
    double out;
    if (first) {
      out = st.seed_rows * st.card_seeded[j];
      JoinEstimate est = EstimateJoin(st, rows, bound, j);
      step.join_vars = std::move(est.join_vars);
    } else {
      JoinEstimate est = EstimateJoin(st, rows, bound, j);
      out = est.out_rows;
      step.join_vars = std::move(est.join_vars);
    }
    auto [op, step_cost] = ChooseOperator(rows, st.card_unseeded[j], out,
                                          !step.join_vars.empty());
    step.op = op;
    step.est_rows = out;
    cost += step_cost;
    rows = std::max(out, 1.0);
    BindPattern(st, j, &bound);
    steps.push_back(std::move(step));
    first = false;
  }
  *total_cost = cost;
  return steps;
}

// Exhaustive left-deep dynamic program over join orders (n ≤
// kMaxDpPatterns). State = subset of joined patterns; transition = join
// one more pattern with the cheaper of probe / merge.
std::vector<PlanStep> DpSteps(const PlanStats& st, double* total_cost) {
  const size_t n = st.n;
  const size_t full = (size_t{1} << n) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> cost(full + 1, kInf);
  std::vector<double> rows(full + 1, 0.0);
  std::vector<uint16_t> last(full + 1, 0);
  std::vector<PlanOp> op(full + 1, PlanOp::kProbeJoin);
  cost[0] = 0.0;
  rows[0] = st.seed_rows;

  // Bound variables of a subset (seed vars plus member pattern vars),
  // with their running distinct bounds.
  auto bound_of = [&](size_t mask) {
    DistinctMap bound = SeedDistincts(st);
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) BindPattern(st, i, &bound);
    }
    return bound;
  };

  for (size_t mask = 1; mask <= full; ++mask) {
    for (size_t j = 0; j < n; ++j) {
      if (!(mask & (size_t{1} << j))) continue;
      size_t prev = mask ^ (size_t{1} << j);
      if (cost[prev] == kInf) continue;
      DistinctMap bound = bound_of(prev);
      JoinEstimate est = EstimateJoin(st, rows[prev], bound, j);
      double out = prev == 0 ? st.seed_rows * st.card_seeded[j] : est.out_rows;
      auto [step_op, step_cost] = ChooseOperator(
          rows[prev], st.card_unseeded[j], out, !est.join_vars.empty());
      double total = cost[prev] + step_cost;
      if (total < cost[mask]) {
        cost[mask] = total;
        rows[mask] = std::max(out, 1.0);
        last[mask] = static_cast<uint16_t>(j);
        op[mask] = step_op;
      }
    }
  }

  // Reconstruct the winning order, then rebuild the steps front-to-back
  // so join_vars / estimates are stored per step.
  std::vector<size_t> order;
  for (size_t mask = full; mask != 0; mask ^= size_t{1} << last[mask]) {
    order.push_back(last[mask]);
  }
  std::reverse(order.begin(), order.end());

  std::vector<PlanStep> steps;
  steps.reserve(n);
  DistinctMap bound = SeedDistincts(st);
  double r = st.seed_rows;
  size_t mask = 0;
  for (size_t j : order) {
    JoinEstimate est = EstimateJoin(st, r, bound, j);
    double out = mask == 0 ? st.seed_rows * st.card_seeded[j] : est.out_rows;
    mask |= size_t{1} << j;
    PlanStep step;
    step.op = op[mask];
    step.patterns = {j};
    step.join_vars = std::move(est.join_vars);
    step.est_rows = out;
    steps.push_back(std::move(step));
    r = std::max(out, 1.0);
    BindPattern(st, j, &bound);
  }
  *total_cost = cost[full];
  return steps;
}

// Collapses runs of ≥2 consecutive merge joins keyed on the same single
// variable into one leapfrog-style k-way intersection. The collapse
// condition guarantees the grouped patterns pairwise share only that
// variable (any other shared var would have appeared in the later step's
// join key).
void CollapseLeapfrog(std::vector<PlanStep>* steps) {
  std::vector<PlanStep> out;
  out.reserve(steps->size());
  size_t i = 0;
  while (i < steps->size()) {
    PlanStep& s = (*steps)[i];
    if (s.op == PlanOp::kMergeJoin && s.join_vars.size() == 1) {
      size_t j = i + 1;
      while (j < steps->size() && (*steps)[j].op == PlanOp::kMergeJoin &&
             (*steps)[j].join_vars == s.join_vars) {
        ++j;
      }
      if (j - i >= 2) {
        PlanStep group;
        group.op = PlanOp::kLeapfrogJoin;
        group.join_vars = s.join_vars;
        for (size_t k = i; k < j; ++k) {
          group.patterns.push_back((*steps)[k].patterns[0]);
        }
        group.est_rows = (*steps)[j - 1].est_rows;
        out.push_back(std::move(group));
        i = j;
        continue;
      }
    }
    out.push_back(std::move(s));
    ++i;
  }
  *steps = std::move(out);
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

// One intermediate tuple: the binding plus the index of the seed row it
// grew from (the major component of the canonical emission order).
struct Row {
  Binding b;
  uint32_t seed;
};

// Extends rows [lo, hi) of `in` through `tp` by index probes, appending
// to `out` in input order. Returns scanned candidate count.
size_t ProbeRange(const GraphSnapshot& graph, const TriplePattern& tp,
                  const std::vector<Row>& in, size_t lo, size_t hi,
                  std::vector<Row>* out, EvalBudget* budget) {
  size_t scanned = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (budget != nullptr && budget->exceeded()) break;
    const Row& row = in[i];
    graph.Match(MatchKey(tp.s, row.b), MatchKey(tp.p, row.b),
                MatchKey(tp.o, row.b), [&](const Triple& t) {
                  ++scanned;
                  if (budget != nullptr && budget->Charge(1)) return false;
                  Row extended{row.b, row.seed};
                  if (ExtendWithTriple(tp, t, &extended.b)) {
                    out->push_back(std::move(extended));
                  }
                  return true;
                });
  }
  return scanned;
}

// Index nested-loop step, seed-chunk parallel above the serial floor.
// Chunks concatenate in order, so output order is thread-count invariant.
std::vector<Row> ExecuteProbe(const GraphSnapshot& graph, const TriplePattern& tp,
                              const std::vector<Row>& in,
                              const EvalOptions& options, size_t* scanned) {
  std::vector<Row> out;
  if (options.threads > 1 && in.size() >= kMinRowsForParallelProbe) {
    size_t chunks =
        std::min(options.threads, in.size() / (kMinRowsForParallelProbe / 2));
    chunks = std::max<size_t>(chunks, 1);
    size_t per_chunk = (in.size() + chunks - 1) / chunks;
    std::vector<std::vector<Row>> parts(chunks);
    std::vector<size_t> part_scans(chunks, 0);
    ThreadPool::Global().ParallelFor(chunks, options.threads, [&](size_t c) {
      size_t lo = c * per_chunk;
      size_t hi = std::min(in.size(), lo + per_chunk);
      part_scans[c] =
          ProbeRange(graph, tp, in, lo, hi, &parts[c], options.budget);
    });
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.reserve(total);
    for (size_t c = 0; c < chunks; ++c) {
      *scanned += part_scans[c];
      std::move(parts[c].begin(), parts[c].end(), std::back_inserter(out));
    }
  } else {
    *scanned += ProbeRange(graph, tp, in, 0, in.size(), &out, options.budget);
  }
  return out;
}

// A materialized pattern extension entry: the pattern-only binding plus
// its join-key values.
struct ExtEntry {
  std::vector<TermId> key;
  Binding b;
};

// Materializes ⟦tp⟧ and extracts the join key of every solution.
std::vector<ExtEntry> MaterializeExtension(const GraphSnapshot& graph,
                                           const TriplePattern& tp,
                                           const std::vector<VarId>& join_vars,
                                           size_t* scanned,
                                           EvalBudget* budget) {
  std::vector<ExtEntry> ext;
  graph.Match(tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey(),
              [&](const Triple& t) {
                ++*scanned;
                if (budget != nullptr && budget->Charge(1)) return false;
                Binding b;
                if (!ExtendWithTriple(tp, t, &b)) return true;
                ExtEntry e;
                e.b = std::move(b);
                e.key.reserve(join_vars.size());
                bool ok = true;
                for (VarId v : join_vars) {
                  auto bound = e.b.Get(v);
                  if (!bound) {
                    ok = false;
                    break;
                  }
                  e.key.push_back(*bound);
                }
                if (ok) ext.push_back(std::move(e));
                return true;
              });
  return ext;
}

// Sorted merge join of the intermediate with one pattern extension.
// Rows missing a join-var value (heterogeneous seed domains) fall back to
// per-row index probes — always correct, never taken on the homogeneous
// seeds the evaluator produces.
std::vector<Row> ExecuteMerge(const GraphSnapshot& graph, const TriplePattern& tp,
                              const std::vector<VarId>& join_vars,
                              const std::vector<Row>& in, size_t* scanned,
                              EvalBudget* budget) {
  std::vector<Row> out;
  std::vector<ExtEntry> ext =
      MaterializeExtension(graph, tp, join_vars, scanned, budget);

  if (join_vars.empty()) {
    // Cross product, row-major.
    out.reserve(in.size() * ext.size());
    for (const Row& row : in) {
      if (budget != nullptr && budget->exceeded()) break;
      for (const ExtEntry& e : ext) {
        auto merged = Binding::Merge(row.b, e.b);
        if (merged) out.push_back(Row{std::move(*merged), row.seed});
      }
    }
    return out;
  }

  std::stable_sort(ext.begin(), ext.end(),
                   [](const ExtEntry& a, const ExtEntry& b) {
                     return a.key < b.key;
                   });

  // Key every input row; rows lacking a join var probe individually.
  std::vector<std::pair<std::vector<TermId>, size_t>> keyed;
  keyed.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    std::vector<TermId> key;
    key.reserve(join_vars.size());
    bool ok = true;
    for (VarId v : join_vars) {
      auto val = in[i].b.Get(v);
      if (!val) {
        ok = false;
        break;
      }
      key.push_back(*val);
    }
    if (ok) {
      keyed.emplace_back(std::move(key), i);
    } else {
      *scanned += ProbeRange(graph, tp, in, i, i + 1, &out, budget);
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Two-pointer merge over the sorted sides with block products.
  size_t ri = 0, ei = 0;
  while (ri < keyed.size() && ei < ext.size()) {
    if (budget != nullptr && budget->exceeded()) break;
    const std::vector<TermId>& rk = keyed[ri].first;
    if (rk < ext[ei].key) {
      ++ri;
    } else if (ext[ei].key < rk) {
      ++ei;
    } else {
      size_t re = ri;
      while (re < keyed.size() && keyed[re].first == rk) ++re;
      size_t ee = ei;
      while (ee < ext.size() && ext[ee].key == rk) ++ee;
      for (size_t r = ri; r < re; ++r) {
        const Row& row = in[keyed[r].second];
        for (size_t e = ei; e < ee; ++e) {
          auto merged = Binding::Merge(row.b, ext[e].b);
          if (merged) out.push_back(Row{std::move(*merged), row.seed});
        }
      }
      ri = re;
      ei = ee;
    }
  }
  return out;
}

// Leapfrog-style multiway intersection on a single shared variable:
// intersect the sorted key sets of all pattern extensions (and the
// intermediate) first, then emit per-key products only for surviving
// keys. Grouped patterns pairwise share only the intersection variable
// (guaranteed by CollapseLeapfrog).
std::vector<Row> ExecuteLeapfrog(const GraphSnapshot& graph,
                                 const std::vector<TriplePattern>& patterns,
                                 const PlanStep& step,
                                 const std::vector<Row>& in, size_t* scanned,
                                 EvalBudget* budget) {
  VarId v = step.join_vars[0];
  std::vector<VarId> key_vars = {v};

  // Materialize each grouped pattern, bucketed by the key value.
  struct Grouped {
    std::unordered_map<TermId, std::vector<Binding>> buckets;
    std::vector<TermId> keys;  // sorted unique
  };
  std::vector<Grouped> rels(step.patterns.size());
  for (size_t g = 0; g < step.patterns.size(); ++g) {
    std::vector<ExtEntry> ext = MaterializeExtension(
        graph, patterns[step.patterns[g]], key_vars, scanned, budget);
    for (ExtEntry& e : ext) {
      rels[g].buckets[e.key[0]].push_back(std::move(e.b));
    }
    rels[g].keys.reserve(rels[g].buckets.size());
    for (const auto& [k, _] : rels[g].buckets) rels[g].keys.push_back(k);
    std::sort(rels[g].keys.begin(), rels[g].keys.end());
  }

  // Bucket the intermediate rows; rows lacking the var fall back to
  // sequential probes through the grouped patterns.
  std::vector<Row> out;
  std::unordered_map<TermId, std::vector<size_t>> row_buckets;
  std::vector<size_t> fallback;
  for (size_t i = 0; i < in.size(); ++i) {
    auto val = in[i].b.Get(v);
    if (val) {
      row_buckets[*val].push_back(i);
    } else {
      fallback.push_back(i);
    }
  }
  if (!fallback.empty()) {
    std::vector<Row> cur;
    cur.reserve(fallback.size());
    for (size_t i : fallback) cur.push_back(in[i]);
    for (size_t pi : step.patterns) {
      std::vector<Row> next;
      *scanned +=
          ProbeRange(graph, patterns[pi], cur, 0, cur.size(), &next, budget);
      cur = std::move(next);
      if (cur.empty()) break;
    }
    std::move(cur.begin(), cur.end(), std::back_inserter(out));
  }

  // Galloping intersection seeded from the smallest relation's key list.
  size_t smallest = 0;
  for (size_t g = 1; g < rels.size(); ++g) {
    if (rels[g].keys.size() < rels[smallest].keys.size()) smallest = g;
  }
  for (TermId key : rels[smallest].keys) {
    if (budget != nullptr && budget->exceeded()) break;
    auto rb = row_buckets.find(key);
    if (rb == row_buckets.end()) continue;
    bool everywhere = true;
    for (size_t g = 0; g < rels.size(); ++g) {
      if (g == smallest) continue;
      if (rels[g].buckets.find(key) == rels[g].buckets.end()) {
        everywhere = false;
        break;
      }
    }
    if (!everywhere) continue;
    // Per-key product: rows × ext_1 × ... × ext_k, depth-first in group
    // pattern order. Order is irrelevant here — the canonical sort at the
    // end of ExecutePlan restores the probe-engine emission order.
    for (size_t ri : rb->second) {
      std::vector<Row> partial = {in[ri]};
      for (size_t g = 0; g < rels.size() && !partial.empty(); ++g) {
        const std::vector<Binding>& bucket = rels[g].buckets.at(key);
        std::vector<Row> next;
        next.reserve(partial.size() * bucket.size());
        for (const Row& row : partial) {
          for (const Binding& b : bucket) {
            auto merged = Binding::Merge(row.b, b);
            if (merged) next.push_back(Row{std::move(*merged), row.seed});
          }
        }
        partial = std::move(next);
      }
      std::move(partial.begin(), partial.end(), std::back_inserter(out));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Worst-case-optimal join (PlanOp::kWcojJoin).
//
// Phase A — leapfrog triejoin over the *core* variables (those shared by
// >= 2 patterns) using the three-tier trie view of the permuted runs
// (rdf/trie_iterator.h). One variable is eliminated per level; at each
// level every (pattern, position) occurrence of the variable contributes
// one sorted stream of candidate values, and the streams are intersected
// by mutual leapfrog seeks — never materializing a bucket. Each aligned
// candidate is additionally filtered through exact visibility probes of
// every pattern containing the variable (fully/partially bound lookups
// against the hash set, group ranges and postings), so the produced set
// of core tuples is a *superset* of the projection of the true answers
// onto the core — tight on acyclic data, worst-case-optimally bounded on
// cyclic data.
//
// Phase B — expansion to full answers through the canonical probe
// pipeline (the probe engine's own pattern order), pruning after each
// step every row whose bound core variables do not project into the
// phase-A core set. Because phase A is a superset, pruning can never
// drop a real answer (and hash collisions can only *keep* a doomed row,
// which the remaining probes then kill) — so the output is byte-
// identical to the probe engine, natively in canonical emission order:
// a wcoj plan needs no restore sort.
//
// If the evaluation budget trips during phase A the partial core is
// discarded and phase B runs unpruned — exactly the probe engine.
// ---------------------------------------------------------------------------

// FNV-1a over the core projection of an assignment, used both to build
// the phase-B prune sets and to test rows against them.
uint64_t HashTerms(const TermId* terms, const size_t* pick, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ terms[pick[i]]) * 1099511628211ULL;
  }
  return h;
}

// One leapfrog stream: the occurrence of the current variable at
// `position` of pattern `pattern`, walked through permutation `perm`.
// When the cyclic predecessor position is bound (a constant or an
// earlier-eliminated core variable) the stream is the level-2 walk
// within that k1; otherwise it is the level-1 walk over distinct k1.
struct WcojStream {
  int perm = 0;
  bool within = false;
  bool k1_is_const = false;
  TermId k1_const = 0;   // when within && k1_is_const
  size_t k1_level = 0;   // when within && !k1_is_const: elim index
};

// One variable-elimination level of the leapfrog triejoin.
struct WcojLevel {
  VarId v = 0;
  std::vector<WcojStream> streams;
  std::vector<size_t> check_patterns;  // patterns containing v
};

// Builds the per-level streams and visibility-check lists for the given
// elimination order. `var_level` maps each core var to its elim index.
std::vector<WcojLevel> BuildWcojLevels(
    const std::vector<TriplePattern>& patterns,
    const std::vector<VarId>& elim_order,
    const std::unordered_map<VarId, size_t>& var_level) {
  std::vector<WcojLevel> levels;
  levels.reserve(elim_order.size());
  for (size_t d = 0; d < elim_order.size(); ++d) {
    WcojLevel level;
    level.v = elim_order[d];
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      const TriplePattern& tp = patterns[pi];
      const PatternTerm* terms[3] = {&tp.s, &tp.p, &tp.o};
      bool contains = false;
      for (int pos = 0; pos < 3; ++pos) {
        if (!terms[pos]->is_var() || terms[pos]->var() != level.v) continue;
        contains = true;
        WcojStream s;
        // Cyclic predecessor: s keys p (SPO), p keys o (POS), o keys s
        // (OSP) — so the predecessor of position `pos` is (pos + 2) % 3.
        const PatternTerm& pred = *terms[(pos + 2) % 3];
        bool pred_bound = false;
        if (pred.is_const()) {
          pred_bound = true;
          s.k1_is_const = true;
          s.k1_const = pred.term();
        } else {
          auto it = var_level.find(pred.var());
          if (it != var_level.end() && it->second < d) {
            pred_bound = true;
            s.k1_level = it->second;
          }
        }
        if (pred_bound) {
          s.within = true;
          // Iterated position -> run keyed by its predecessor.
          s.perm = pos == 1 ? 0 : pos == 2 ? 1 : 2;  // SPO / POS / OSP
        } else {
          s.within = false;
          // Iterated position leads the run.
          s.perm = pos;  // s->SPO, p->POS, o->OSP
        }
        // Identical streams intersect to themselves — a star of constant
        // predicates yields one global walk, not one per pattern (the
        // per-pattern constraints live in the visibility checks).
        bool dup = false;
        for (const WcojStream& t : level.streams) {
          if (t.perm == s.perm && t.within == s.within &&
              t.k1_is_const == s.k1_is_const && t.k1_const == s.k1_const &&
              t.k1_level == s.k1_level) {
            dup = true;
            break;
          }
        }
        if (!dup) level.streams.push_back(s);
      }
      if (contains) level.check_patterns.push_back(pi);
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

// Phase A: enumerates the core assignments depth-first. Returns false if
// the budget tripped (core is then unusable).
bool WcojEnumerateCore(const TrieJoinContext& ctx,
                       const std::vector<TriplePattern>& patterns,
                       const std::vector<WcojLevel>& levels,
                       const std::unordered_map<VarId, size_t>& var_level,
                       EvalBudget* budget, size_t* scanned,
                       std::vector<std::vector<TermId>>* core) {
  std::vector<TermId> asg(levels.size(), 0);

  // Exact visibility of pattern `pi` under the first `depth + 1`
  // eliminated variables: probe with every bound position (constants
  // plus assigned core vars) and any shape the indexes answer directly.
  auto pattern_visible = [&](size_t pi, size_t depth) {
    const TriplePattern& tp = patterns[pi];
    const PatternTerm* terms[3] = {&tp.s, &tp.p, &tp.o};
    TermId vals[3] = {0, 0, 0};
    bool bnd[3] = {false, false, false};
    for (int pos = 0; pos < 3; ++pos) {
      if (terms[pos]->is_const()) {
        vals[pos] = terms[pos]->term();
        bnd[pos] = true;
      } else {
        auto it = var_level.find(terms[pos]->var());
        if (it != var_level.end() && it->second <= depth) {
          vals[pos] = asg[it->second];
          bnd[pos] = true;
        }
      }
    }
    int nb = (bnd[0] ? 1 : 0) + (bnd[1] ? 1 : 0) + (bnd[2] ? 1 : 0);
    switch (nb) {
      case 3:
        return ctx.TripleVisible(Triple{vals[0], vals[1], vals[2]});
      case 2:
        if (bnd[0] && bnd[1]) return ctx.GroupVisible(0, vals[0], vals[1]);
        if (bnd[1] && bnd[2]) return ctx.GroupVisible(1, vals[1], vals[2]);
        return ctx.GroupVisible(2, vals[2], vals[0]);
      case 1: {
        int role = bnd[0] ? 0 : bnd[1] ? 1 : 2;
        return ctx.TermVisible(role, vals[role]);
      }
      default:
        return true;
    }
  };

  // One iterator per (level, stream), constructed once for the whole
  // enumeration: every seek repositions absolutely, so reuse across
  // sibling subtrees is sound, and within-streams re-open their k1
  // subtree per descent (a no-op when the k1 repeats, e.g. a constant
  // predicate) so level-2 seeks search only the subtree's window.
  std::vector<std::vector<TrieIterator>> iters(levels.size());
  for (size_t d = 0; d < levels.size(); ++d) {
    iters[d].reserve(levels[d].streams.size());
    for (const WcojStream& s : levels[d].streams) {
      iters[d].emplace_back(ctx, s.perm);
    }
  }

  std::function<bool(size_t)> descend = [&](size_t depth) -> bool {
    if (depth == levels.size()) {
      core->push_back(asg);
      return true;
    }
    const WcojLevel& level = levels[depth];
    std::vector<TrieIterator>& its = iters[depth];
    for (size_t si = 0; si < level.streams.size(); ++si) {
      const WcojStream& s = level.streams[si];
      if (s.within) {
        its[si].OpenK1(s.k1_is_const ? s.k1_const : asg[s.k1_level]);
      }
    }
    // Least candidate >= target in stream `si`, or nullopt if exhausted.
    auto seek = [&](size_t si, TermId target) -> std::optional<TermId> {
      const WcojStream& s = level.streams[si];
      TrieIterator& it = its[si];
      if (s.within) {
        it.SeekK2(target);
        if (it.at_end()) return std::nullopt;
        return it.k2();
      }
      it.SeekK1(target);
      if (it.at_end()) return std::nullopt;
      return it.k1();
    };
    TermId lo = 0;
    while (true) {
      // One alignment pass: stream 0 proposes the least candidate >= lo,
      // the rest must land exactly on it, raising the bar otherwise.
      TermId hi = lo;
      bool exhausted = false;
      bool aligned = true;
      for (size_t si = 0; si < level.streams.size(); ++si) {
        std::optional<TermId> c = seek(si, hi);
        if (!c.has_value()) {
          exhausted = true;
          break;
        }
        if (*c > hi) {
          hi = *c;
          if (si > 0) aligned = false;
        }
      }
      if (exhausted) return true;
      if (!aligned) {
        lo = hi;
        continue;
      }
      ++*scanned;
      if (budget != nullptr && budget->Charge(1)) return false;
      asg[depth] = hi;
      bool ok = true;
      for (size_t pi : level.check_patterns) {
        if (!pattern_visible(pi, depth)) {
          ok = false;
          break;
        }
      }
      if (ok && !descend(depth + 1)) return false;
      if (hi == std::numeric_limits<TermId>::max()) return true;
      lo = hi + 1;
    }
  };

  return descend(0);
}

// Full two-phase WCOJ execution of the (single) kWcojJoin step.
std::vector<Row> ExecuteWcoj(const GraphSnapshot& graph, const QueryPlan& plan,
                             const PlanStep& step, const std::vector<Row>& in,
                             const EvalOptions& options, size_t* scanned) {
  const std::vector<TriplePattern>& patterns = plan.patterns;
  const std::vector<VarId>& elim_order = step.join_vars;
  std::unordered_map<VarId, size_t> var_level;
  for (size_t d = 0; d < elim_order.size(); ++d) {
    var_level.emplace(elim_order[d], d);
  }
  std::vector<WcojLevel> levels =
      BuildWcojLevels(patterns, elim_order, var_level);

  // Phase A. The context pins the snapshot's epoch and (in concurrent
  // mode) holds the graph's shared lock, so it must be destroyed before
  // phase B starts issuing locking snapshot reads.
  std::vector<std::vector<TermId>> core;
  bool pruning = true;
  {
    TrieJoinContext ctx(graph.graph(), graph.epoch());
    pruning = WcojEnumerateCore(ctx, patterns, levels, var_level,
                                options.budget, scanned, &core);
  }
  if (pruning && core.empty()) {
    // Every answer projects into the core; an empty core means none.
    return {};
  }

  // Phase B: canonical probe pipeline with per-step core pruning. At
  // each probe step that binds at least one new core variable, keep only
  // rows whose projection onto the bound core prefix appears in the
  // core (hashed; collisions only ever keep rows).
  std::vector<std::optional<std::unordered_set<uint64_t>>> prune(
      plan.probe_order.size());
  std::vector<std::vector<VarId>> prune_vars(plan.probe_order.size());
  if (pruning) {
    std::vector<char> bound(levels.size(), 0);
    for (size_t k = 0; k < plan.probe_order.size(); ++k) {
      bool changed = false;
      for (VarId v : patterns[plan.probe_order[k]].Vars()) {
        auto it = var_level.find(v);
        if (it != var_level.end() && !bound[it->second]) {
          bound[it->second] = 1;
          changed = true;
        }
      }
      if (!changed) continue;
      std::vector<size_t> pick;
      for (size_t d = 0; d < levels.size(); ++d) {
        if (bound[d]) {
          pick.push_back(d);
          prune_vars[k].push_back(elim_order[d]);
        }
      }
      std::unordered_set<uint64_t>& set = prune[k].emplace();
      set.reserve(core.size() * 2);
      for (const std::vector<TermId>& t : core) {
        set.insert(HashTerms(t.data(), pick.data(), pick.size()));
      }
    }
  }

  std::vector<Row> rows = in;
  for (size_t k = 0; k < plan.probe_order.size(); ++k) {
    if (options.budget != nullptr && options.budget->exceeded()) break;
    rows = ExecuteProbe(graph, patterns[plan.probe_order[k]], rows, options,
                        scanned);
    if (prune[k].has_value()) {
      const std::unordered_set<uint64_t>& set = *prune[k];
      const std::vector<VarId>& pv = prune_vars[k];
      rows.erase(std::remove_if(rows.begin(), rows.end(),
                                [&](const Row& r) {
                                  uint64_t h = 1469598103934665603ULL;
                                  for (VarId v : pv) {
                                    h = (h ^ *r.b.Get(v)) * 1099511628211ULL;
                                  }
                                  return set.find(h) == set.end();
                                }),
                 rows.end());
    }
    if (rows.empty()) break;
  }
  return rows;
}

}  // namespace

const char* ToString(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kProbeJoin:
      return "probe";
    case PlanOp::kMergeJoin:
      return "merge";
    case PlanOp::kLeapfrogJoin:
      return "leapfrog";
    case PlanOp::kWcojJoin:
      return "wcoj";
  }
  return "?";
}

std::vector<size_t> OrderPatternsGreedy(
    const GraphSnapshot& graph, const std::vector<TriplePattern>& patterns,
    const BindingSet& seeds) {
  if (patterns.empty()) return {};
  if (patterns.size() == 1) return {0};
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::set<VarId> bound;
  if (!seeds.empty()) {
    for (const auto& [var, term] : seeds.front().entries()) bound.insert(var);
  }
  // Per-pattern cardinalities depend only on the seeds, not on which
  // patterns were picked earlier — compute each once, sampling up to
  // three seeds (first / middle / last) and taking the median, so one
  // unrepresentative seed cannot pick a bad order.
  std::vector<size_t> samples = SampleSeedIndices(seeds.size());
  std::vector<size_t> estimates(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    estimates[i] = SeededCardinality(graph, patterns[i], seeds, samples);
  }
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = patterns.size();
    size_t best_unbound = SIZE_MAX;
    size_t best_estimate = SIZE_MAX;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      const TriplePattern& tp = patterns[i];
      size_t unbound = 0;
      for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
        if (pt->is_var() && bound.find(pt->var()) == bound.end()) ++unbound;
      }
      if (unbound < best_unbound ||
          (unbound == best_unbound && estimates[i] < best_estimate)) {
        best = i;
        best_unbound = unbound;
        best_estimate = estimates[i];
      }
    }
    order.push_back(best);
    used[best] = true;
    for (VarId v : patterns[best].Vars()) bound.insert(v);
  }
  return order;
}

QueryPlan PlanBgp(const GraphSnapshot& graph,
                  const std::vector<TriplePattern>& patterns,
                  const BindingSet& seed, const EvalOptions& options) {
  QueryPlan plan;
  plan.patterns = patterns;
  if (patterns.empty()) return plan;

  if (options.reorder_patterns) {
    plan.probe_order = OrderPatternsGreedy(graph, patterns, seed);
  } else {
    plan.probe_order.resize(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) plan.probe_order[i] = i;
  }

  PlanStats st = ComputeStats(graph, patterns, seed);

  if (!options.reorder_patterns) {
    // Textual order (reordering ablated): keep the user's order, still
    // choosing the physical operator per step.
    plan.steps = StepsForOrder(st, plan.probe_order, &plan.est_cost);
  } else if (patterns.size() <= kMaxDpPatterns && patterns.size() >= 2) {
    plan.steps = DpSteps(st, &plan.est_cost);
    plan.used_dp = true;
    DpPlanCounter().Increment();
  } else {
    plan.steps = StepsForOrder(st, plan.probe_order, &plan.est_cost);
    if (patterns.size() > kMaxDpPatterns) FallbackCounter().Increment();
  }

  CollapseLeapfrog(&plan.steps);

  // A scan label for a probe over the trivial seed reads better in
  // EXPLAIN and matches the operator catalog.
  if (!plan.steps.empty() && plan.steps[0].op == PlanOp::kProbeJoin &&
      seed.size() <= 1 && (seed.empty() || seed.front().empty())) {
    plan.steps[0].op = PlanOp::kScan;
  }

  // When the executed sequence is the probe engine's own order with only
  // probe/scan steps, the output is already canonical — no restore sort.
  plan.canonical_order = true;
  if (plan.steps.size() != plan.probe_order.size()) {
    plan.canonical_order = false;
  } else {
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& s = plan.steps[i];
      bool probe_like =
          s.op == PlanOp::kProbeJoin || s.op == PlanOp::kScan;
      if (!probe_like || s.patterns.size() != 1 ||
          s.patterns[0] != plan.probe_order[i]) {
        plan.canonical_order = false;
        break;
      }
    }
  }

  // Worst-case-optimal alternative. Eligible when the BGP has >= 3
  // patterns sharing ("core") variables over the trivial seed; costed as
  // phase A (leapfrog seeks over per-variable stream bounds, tightened
  // by the per-predicate distinct statistics) plus phase B (the
  // canonical probe chain with intermediates clamped near the final
  // output — the effect of core pruning). The binary-join plan pays its
  // restore sort on top when it is not already canonical; that recovery
  // cost is what flips skewed cyclic/star queries to wcoj.
  bool trivial_seed =
      seed.size() <= 1 && (seed.empty() || seed.front().empty());
  if (options.wcoj != WcojMode::kOff && trivial_seed &&
      patterns.size() >= 3) {
    std::unordered_map<VarId, size_t> occurrences;
    for (const std::vector<VarId>& vs : st.vars) {
      for (VarId v : vs) ++occurrences[v];
    }
    // Per-core-var minimum stream size (the leapfrog walk never visits
    // more candidates than its narrowest stream).
    std::vector<std::pair<double, VarId>> core;
    for (const auto& [v, n_occ] : occurrences) {
      if (n_occ < 2) continue;
      double m = static_cast<double>(std::max<size_t>(1, graph.size()));
      for (size_t j = 0; j < st.n; ++j) {
        auto it = st.d_pat[j].find(v);
        if (it != st.d_pat[j].end()) m = std::min(m, it->second);
      }
      core.emplace_back(m, v);
    }
    if (!core.empty()) {
      // Elimination order: seed with the narrowest-stream variable, then
      // greedily prefer variables *keyed* by an already-placed one — an
      // occurrence whose cyclic predecessor position holds a placed
      // variable walks only that group's subtree (level-2), while an
      // unkeyed level must intersect run-wide level-1 walks. Following
      // the keying structure is what keeps a cyclic query's phase A near
      // its AGM bound; ties break by stream bound then VarId, so the
      // order is deterministic.
      std::sort(core.begin(), core.end());
      std::vector<VarId> elim_order;
      elim_order.reserve(core.size());
      std::vector<char> taken(core.size(), 0);
      std::unordered_set<VarId> placed;
      auto keyed_by_placed = [&](VarId v) {
        for (const TriplePattern& tp : patterns) {
          const PatternTerm* terms[3] = {&tp.s, &tp.p, &tp.o};
          for (int pos = 0; pos < 3; ++pos) {
            if (!terms[pos]->is_var() || terms[pos]->var() != v) continue;
            const PatternTerm& pred = *terms[(pos + 2) % 3];
            if (pred.is_var() && placed.count(pred.var()) > 0) return true;
          }
        }
        return false;
      };
      for (size_t step = 0; step < core.size(); ++step) {
        size_t best = core.size();
        bool best_keyed = false;
        // `core` is (m, v)-sorted, so the first hit in each class is the
        // narrowest: a keyed candidate always beats an unkeyed one.
        for (size_t i = 0; i < core.size(); ++i) {
          if (taken[i] != 0) continue;
          bool keyed = !placed.empty() && keyed_by_placed(core[i].second);
          if (best == core.size() || (keyed && !best_keyed)) {
            best = i;
            best_keyed = keyed;
            if (keyed) break;
          }
        }
        taken[best] = 1;
        placed.insert(core[best].second);
        elim_order.push_back(core[best].second);
      }
      // Phase A cost: a cascade over the levels. Entering level d with A
      // surviving partial assignments, the leapfrog visits ~ A * w_d
      // aligned nodes, where w_d is the narrowest stream of the level: a
      // stream keyed by a placed variable walks one level-2 subtree
      // (pattern cardinality over the key's distinct count), a constant-
      // keyed stream walks the pattern's distinct iterated values (the
      // per-predicate statistics when the constant is the predicate),
      // and an unkeyed stream walks the position's graph-wide distinct
      // values. Patterns that become fully bound cap the survivors — the
      // engine's per-level visibility checks. This is what makes the
      // planner decline wcoj for hub-skewed cyclic queries, where the
      // group-level (two-level-trie) walk degenerates to the same
      // two-path blowup a binary plan pays, with worse constants.
      double cost_a = 0.0;
      {
        std::unordered_set<VarId> done;
        double surviving = 1.0;
        for (VarId v : elim_order) {
          double width = std::max(1.0, static_cast<double>(graph.size()));
          for (size_t j = 0; j < st.n; ++j) {
            const TriplePattern& tp = patterns[j];
            const PatternTerm* terms[3] = {&tp.s, &tp.p, &tp.o};
            for (int pos = 0; pos < 3; ++pos) {
              if (!terms[pos]->is_var() || terms[pos]->var() != v) continue;
              const PatternTerm& pred = *terms[(pos + 2) % 3];
              double w;
              if (pred.is_var() && done.count(pred.var()) > 0) {
                // One level-2 subtree — but the run's groups are
                // predicate-blind (e.g. OSP groups hold *every* triple
                // with that object), so the expected width is the
                // graph-wide triples-per-distinct-key, not the
                // pattern's own fan-out.
                w = std::max(1.0, static_cast<double>(graph.size())) /
                    std::max(1.0, DistinctAtPosition(graph, (pos + 2) % 3));
              } else if (pred.is_const()) {
                w = std::max(1.0, st.d_pat[j].at(v));
              } else {
                w = DistinctAtPosition(graph, pos);
              }
              width = std::min(width, w);
            }
          }
          cost_a += surviving * width * kProbeOverhead;
          done.insert(v);
          double cap = surviving * width;
          for (size_t j = 0; j < st.n; ++j) {
            bool all_bound = !st.vars[j].empty();
            for (VarId u : st.vars[j]) {
              if (done.count(u) == 0) {
                all_bound = false;
                break;
              }
            }
            if (all_bound) {
              cap = std::min(cap, std::max(1.0, st.card_unseeded[j]));
            }
          }
          surviving = std::max(1.0, cap);
        }
      }
      // Phase B: probe chain in probe order, intermediates clamped to
      // the final-output estimate (pruning discards rows outside the
      // core as soon as their core variables bind).
      double out_final = 1.0;
      {
        DistinctMap bound;
        double r = 1.0;
        bool first = true;
        for (size_t j : plan.probe_order) {
          JoinEstimate est = EstimateJoin(st, r, bound, j);
          r = std::max(first ? st.card_seeded[j] : est.out_rows, 1.0);
          BindPattern(st, j, &bound);
          first = false;
        }
        out_final = r;
      }
      // Each probe step still *produces* its unpruned output (pruning
      // runs after the probes), but the rows *carried* into the next
      // step are clamped to the final output — the effect of discarding
      // rows outside the phase-A core as soon as their core vars bind.
      double cost_b = 0.0;
      {
        DistinctMap bound;
        double r = 1.0;
        bool first = true;
        for (size_t j : plan.probe_order) {
          JoinEstimate est = EstimateJoin(st, r, bound, j);
          double out = std::max(first ? st.card_seeded[j] : est.out_rows, 1.0);
          cost_b += ProbeCost(r, out);
          r = std::min(out, out_final);
          BindPattern(st, j, &bound);
          first = false;
        }
      }
      double wcoj_cost = cost_a + cost_b;
      double binary_cost = plan.est_cost;
      if (!plan.canonical_order) {
        // Restore sort: one PositionOf probe per (row, pattern) plus the
        // n·log2(n) key sort.
        double rows_out = plan.steps.empty() ? 1.0 : plan.steps.back().est_rows;
        rows_out = std::max(rows_out, 1.0);
        binary_cost +=
            rows_out * (static_cast<double>(st.n) * kProbeOverhead +
                        kSortWeight * std::log2(std::max(2.0, rows_out)));
      }
      if (options.wcoj == WcojMode::kForce || wcoj_cost < binary_cost) {
        PlanStep step;
        step.op = PlanOp::kWcojJoin;
        step.patterns = plan.probe_order;
        step.join_vars = std::move(elim_order);
        step.est_rows = out_final;
        plan.steps.clear();
        plan.steps.push_back(std::move(step));
        plan.est_cost = wcoj_cost;
        plan.canonical_order = true;
      }
    }
  }
  return plan;
}

BindingSet ExecutePlan(const GraphSnapshot& graph, QueryPlan* plan, BindingSet seed,
                       const EvalOptions& options) {
  if (plan->patterns.empty() || seed.empty()) return seed;

  std::vector<Row> rows;
  rows.reserve(seed.size());
  for (size_t i = 0; i < seed.size(); ++i) {
    rows.push_back(Row{std::move(seed[i]), static_cast<uint32_t>(i)});
  }

  size_t scanned_total = 0;
  size_t produced_total = 0;
  for (PlanStep& step : plan->steps) {
    if (options.budget != nullptr && options.budget->exceeded()) break;
    size_t scanned = 0;
    std::vector<Row> next;
    switch (step.op) {
      case PlanOp::kScan:
      case PlanOp::kProbeJoin:
        next = ExecuteProbe(graph, plan->patterns[step.patterns[0]], rows,
                            options, &scanned);
        ProbeJoinCounter().Increment();
        break;
      case PlanOp::kMergeJoin:
        next = ExecuteMerge(graph, plan->patterns[step.patterns[0]],
                            step.join_vars, rows, &scanned, options.budget);
        MergeJoinCounter().Increment();
        break;
      case PlanOp::kLeapfrogJoin:
        next = ExecuteLeapfrog(graph, plan->patterns, step, rows, &scanned,
                               options.budget);
        LeapfrogJoinCounter().Increment();
        break;
      case PlanOp::kWcojJoin:
        next = ExecuteWcoj(graph, *plan, step, rows, options, &scanned);
        WcojJoinCounter().Increment();
        break;
    }
    step.scanned = scanned;
    step.actual_rows = next.size();
    scanned_total += scanned;
    produced_total += next.size();
    rows = std::move(next);
    if (rows.empty()) break;
  }
  PatternMatchCounter().Add(scanned_total);
  BindingCounter().Add(produced_total);

  if (!plan->canonical_order && rows.size() > 1) {
    // Restore the probe engine's emission order. A full binding uniquely
    // determines the triple each pattern matched; the probe engine emits
    // in lexicographic (seed row, insertion position of pattern
    // probe_order[0]'s triple, position of probe_order[1]'s, ...) order,
    // so that key — recovered via Graph::PositionOf — sorts any
    // execution order back to byte-identical output.
    const size_t stride = plan->probe_order.size() + 1;
    std::vector<uint64_t> keys(rows.size() * stride);
    for (size_t i = 0; i < rows.size(); ++i) {
      uint64_t* key = keys.data() + i * stride;
      key[0] = rows[i].seed;
      for (size_t k = 0; k < plan->probe_order.size(); ++k) {
        Triple t =
            SubstituteTriple(plan->patterns[plan->probe_order[k]], rows[i].b);
        key[k + 1] = graph.PositionOf(t).value_or(UINT32_MAX);
      }
    }
    std::vector<uint32_t> idx(rows.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
    std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t* ka = keys.data() + size_t{a} * stride;
      const uint64_t* kb = keys.data() + size_t{b} * stride;
      return std::lexicographical_compare(ka, ka + stride, kb, kb + stride);
    });
    BindingSet out;
    out.reserve(rows.size());
    for (uint32_t i : idx) out.push_back(std::move(rows[i].b));
    return out;
  }

  BindingSet out;
  out.reserve(rows.size());
  for (Row& row : rows) out.push_back(std::move(row.b));
  return out;
}

std::vector<size_t> PlanJoinOrder(const std::vector<TriplePattern>& patterns,
                                  const std::vector<size_t>& cardinalities) {
  return PlanJoinOrder(patterns, cardinalities, {});
}

std::vector<size_t> PlanJoinOrder(const std::vector<TriplePattern>& patterns,
                                  const std::vector<size_t>& cardinalities,
                                  const std::vector<JoinOrderHints>& hints) {
  const size_t n = patterns.size();
  if (n <= 1) {
    return n == 0 ? std::vector<size_t>{} : std::vector<size_t>{0};
  }

  if (n > kMaxDpPatterns) {
    // Selectivity sort (the historical federator order).
    FallbackCounter().Increment();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cardinalities[a] < cardinalities[b];
    });
    return order;
  }

  // Same DP as PlanBgp with probe-only costing and no graph statistics:
  // the only distinct-value bound available for a join var is each side's
  // relation size.
  PlanStats st;
  st.n = n;
  st.seed_rows = 1.0;
  st.card_unseeded.reserve(n);
  st.card_seeded.reserve(n);
  st.vars.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double c = static_cast<double>(std::max<size_t>(1, cardinalities[i]));
    st.card_unseeded.push_back(c);
    st.card_seeded.push_back(c);
    st.vars.push_back(patterns[i].Vars());
    st.d_pat.emplace_back();
    // Position-aware distinct bounds when hints are supplied: the
    // pattern's relation size, tightened by the federation-wide distinct
    // subject / object counts of its predicate.
    const JoinOrderHints* h = i < hints.size() ? &hints[i] : nullptr;
    int position = 0;
    for (const PatternTerm* pt :
         {&patterns[i].s, &patterns[i].p, &patterns[i].o}) {
      if (pt->is_var()) {
        double d = c;
        if (h != nullptr && position == 0 && h->distinct_s > 0) {
          d = std::min(d, static_cast<double>(h->distinct_s));
        }
        if (h != nullptr && position == 2 && h->distinct_o > 0) {
          d = std::min(d, static_cast<double>(h->distinct_o));
        }
        auto [it, inserted] = st.d_pat.back().try_emplace(pt->var(), d);
        if (!inserted) it->second = std::min(it->second, d);
      }
      ++position;
    }
  }
  double cost = 0.0;
  std::vector<PlanStep> steps = DpSteps(st, &cost);
  DpPlanCounter().Increment();
  std::vector<size_t> order;
  order.reserve(n);
  for (const PlanStep& s : steps) {
    for (size_t p : s.patterns) order.push_back(p);
  }
  return order;
}

std::string RenderPlan(const QueryPlan& plan, const Dictionary* dict,
                       const VarPool* vars) {
  std::ostringstream os;
  os << "plan: " << (plan.used_dp ? "dp" : "greedy") << " order, est cost "
     << static_cast<long long>(plan.est_cost)
     << (plan.canonical_order ? " (native canonical order)"
                              : " (canonical restore sort)")
     << "\n";
  auto render_pattern = [&](size_t i) {
    if (dict != nullptr && vars != nullptr) {
      return ToString(plan.patterns[i], *dict, *vars);
    }
    std::ostringstream p;
    p << "t" << i;
    return p.str();
  };
  auto render_var = [&](VarId v) {
    std::ostringstream s;
    if (vars != nullptr) {
      s << "?" << vars->name(v);
    } else {
      s << "?v" << v;
    }
    return s.str();
  };
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    os << "  step " << (i + 1) << ": " << ToString(s.op) << " ";
    for (size_t k = 0; k < s.patterns.size(); ++k) {
      if (k > 0) os << " & ";
      os << "[" << render_pattern(s.patterns[k]) << "]";
    }
    if (!s.join_vars.empty()) {
      os << " on ";
      for (size_t k = 0; k < s.join_vars.size(); ++k) {
        if (k > 0) os << ",";
        os << render_var(s.join_vars[k]);
      }
    }
    os << "  est " << static_cast<long long>(s.est_rows) << " rows, actual "
       << s.actual_rows << ", scanned " << s.scanned << "\n";
  }
  return os.str();
}

}  // namespace rps
