#include "query/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "query/eval.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

obs::Counter& DpPlanCounter() {
  static obs::Counter* c = obs::Registry::Global().counter("query.plan.dp_plans");
  return *c;
}
obs::Counter& FallbackCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.fallbacks");
  return *c;
}
obs::Counter& ProbeJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.probe_joins");
  return *c;
}
obs::Counter& MergeJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.merge_joins");
  return *c;
}
obs::Counter& LeapfrogJoinCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("query.plan.leapfrog_joins");
  return *c;
}
// The plan executor feeds the same eval.* counters as the probe loop so
// existing dashboards / tests see comparable scan and intermediate-size
// numbers regardless of engine.
obs::Counter& PatternMatchCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.pattern_matches");
  return *c;
}
obs::Counter& BindingCounter() {
  static obs::Counter* c =
      obs::Registry::Global().counter("eval.bindings_produced");
  return *c;
}

// ---------------------------------------------------------------------------
// Cost model (documented in docs/QUERY_PLANNING.md).
//
// All leaf statistics are *exact*: Graph::EstimateMatches is exact for
// every bound/unbound shape, and the per-position distinct counts are the
// posting-index sizes. Only join selectivities are estimated, with the
// classic System-R independence rule
//     |A ⋈ B| = |A| · |B| / Π_{v ∈ joinvars} max(d_A(v), d_B(v)).
// ---------------------------------------------------------------------------

// Abstract per-row cost of one index probe (hash lookups / binary
// searches) in the nested-loop operator.
constexpr double kProbeOverhead = 8.0;
// Per-triple cost of materializing a pattern extension for a merge join.
constexpr double kMaterializeCost = 1.0;
// Weight of the n·log2(n) sort terms of a merge join.
constexpr double kSortWeight = 0.25;

// Up to this many seeds are sampled (first / middle / last) when costing
// seeded pattern cardinalities.
constexpr size_t kSeedSamples = 3;

// Rebuilt from eval.cc: seed sets below this size are extended serially
// in the probe operator; chunking overhead would dominate.
constexpr size_t kMinRowsForParallelProbe = 32;

// Everything the planner needs, precomputed once per BGP.
struct PlanStats {
  size_t n = 0;
  double seed_rows = 1.0;
  std::vector<double> card_unseeded;        // exact |ext(tp_i)|
  std::vector<double> card_seeded;          // median per-seed cardinality
  std::vector<std::vector<VarId>> vars;     // vars of each pattern
  std::vector<VarId> seed_vars;             // dom of the sample seeds
  // Graph-wide distinct-value upper bound per variable: the minimum
  // posting-index size over every (pattern, position) the var occurs at.
  std::unordered_map<VarId, double> d_graph;
};

double DistinctAtPosition(const GraphSnapshot& graph, int position) {
  switch (position) {
    case 0:
      return static_cast<double>(std::max<size_t>(1, graph.DistinctSubjects()));
    case 1:
      return static_cast<double>(
          std::max<size_t>(1, graph.DistinctPredicates()));
    default:
      return static_cast<double>(std::max<size_t>(1, graph.DistinctObjects()));
  }
}

// Indices of up to kSeedSamples representative seeds: first, middle, last.
std::vector<size_t> SampleSeedIndices(size_t n_seeds) {
  std::vector<size_t> idx;
  if (n_seeds == 0) return idx;
  idx.push_back(0);
  if (n_seeds > 2) idx.push_back(n_seeds / 2);
  if (n_seeds > 1) idx.push_back(n_seeds - 1);
  return idx;
}

// Median of the pattern's exact cardinality under each sample seed. The
// median (not the first sample) keeps one unrepresentative seed — e.g. a
// hub node that matches everything — from mis-ordering the whole join.
size_t SeededCardinality(const GraphSnapshot& graph, const TriplePattern& tp,
                         const BindingSet& seeds,
                         const std::vector<size_t>& samples) {
  if (samples.empty()) {
    return graph.EstimateMatches(tp.s.AsMatchKey(), tp.p.AsMatchKey(),
                                 tp.o.AsMatchKey());
  }
  std::vector<size_t> cards;
  cards.reserve(samples.size());
  for (size_t si : samples) {
    const Binding& seed = seeds[si];
    cards.push_back(graph.EstimateMatches(
        MatchKey(tp.s, seed), MatchKey(tp.p, seed), MatchKey(tp.o, seed)));
  }
  std::sort(cards.begin(), cards.end());
  return cards[cards.size() / 2];
}

PlanStats ComputeStats(const GraphSnapshot& graph,
                       const std::vector<TriplePattern>& patterns,
                       const BindingSet& seeds) {
  PlanStats st;
  st.n = patterns.size();
  st.seed_rows = static_cast<double>(std::max<size_t>(1, seeds.size()));
  std::vector<size_t> samples = SampleSeedIndices(seeds.size());
  st.card_unseeded.reserve(st.n);
  st.card_seeded.reserve(st.n);
  st.vars.reserve(st.n);
  for (const TriplePattern& tp : patterns) {
    st.card_unseeded.push_back(static_cast<double>(graph.EstimateMatches(
        tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey())));
    st.card_seeded.push_back(
        static_cast<double>(SeededCardinality(graph, tp, seeds, samples)));
    st.vars.push_back(tp.Vars());
    int position = 0;
    for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
      if (pt->is_var()) {
        double d = DistinctAtPosition(graph, position);
        auto [it, inserted] = st.d_graph.try_emplace(pt->var(), d);
        if (!inserted) it->second = std::min(it->second, d);
      }
      ++position;
    }
  }
  if (!seeds.empty()) {
    for (const auto& [var, term] : seeds.front().entries()) {
      st.seed_vars.push_back(var);
      // A seed var may not occur in any pattern; give it a neutral bound.
      st.d_graph.try_emplace(var, st.seed_rows);
    }
  }
  return st;
}

// Join-selectivity denominator and output estimate for joining pattern j
// into an intermediate of `rows` rows whose bound variables are `bound`.
struct JoinEstimate {
  std::vector<VarId> join_vars;
  double out_rows = 0.0;
};

JoinEstimate EstimateJoin(const PlanStats& st, double rows,
                          const std::set<VarId>& bound, size_t j) {
  JoinEstimate est;
  double denom = 1.0;
  for (VarId v : st.vars[j]) {
    if (bound.find(v) == bound.end()) continue;
    est.join_vars.push_back(v);
    double dg = 1.0;
    auto it = st.d_graph.find(v);
    if (it != st.d_graph.end()) dg = it->second;
    double d_pattern = std::min(st.card_unseeded[j], dg);
    double d_inter = std::min(rows, dg);
    denom *= std::max({d_pattern, d_inter, 1.0});
  }
  est.out_rows = rows * st.card_unseeded[j] / denom;
  return est;
}

double ProbeCost(double rows, double out_rows) {
  return rows * kProbeOverhead + out_rows;
}

double MergeCost(double rows, double card_unseeded, double out_rows) {
  double sort_ext =
      card_unseeded * std::log2(std::max(2.0, card_unseeded)) * kSortWeight;
  double sort_rows = rows * std::log2(std::max(2.0, rows)) * kSortWeight;
  return card_unseeded * kMaterializeCost + sort_ext + sort_rows + out_rows;
}

// Chooses the cheaper physical operator for one join step and returns
// (op, cost). The first step over the trivial seed {µ∅} is a plain range
// scan; merge never wins there (rows == 1 makes the probe side free).
std::pair<PlanOp, double> ChooseOperator(double rows, double card_unseeded,
                                         double out_rows, bool has_join_vars) {
  double probe = ProbeCost(rows, out_rows);
  if (!has_join_vars) {
    // Cross product: probing scans the whole extension once per row;
    // merge materializes it once. Probe only wins for tiny extensions.
    probe = rows * kProbeOverhead + rows * card_unseeded;
  }
  if (rows <= 1.0) {
    // A one-row intermediate touches exactly the matching index range
    // with a single probe; materializing and sorting the whole extension
    // can never beat that.
    return {PlanOp::kProbeJoin, probe};
  }
  double merge = MergeCost(rows, card_unseeded, out_rows);
  if (merge < probe) return {PlanOp::kMergeJoin, merge};
  return {PlanOp::kProbeJoin, probe};
}

// Builds plan steps for a fixed join order by choosing the operator per
// step with a running cardinality estimate. Used by the greedy fallback
// and the reorder_patterns=false (textual order) path.
std::vector<PlanStep> StepsForOrder(const PlanStats& st,
                                    const std::vector<size_t>& order,
                                    double* total_cost) {
  std::vector<PlanStep> steps;
  steps.reserve(order.size());
  std::set<VarId> bound(st.seed_vars.begin(), st.seed_vars.end());
  double rows = st.seed_rows;
  double cost = 0.0;
  bool first = true;
  for (size_t j : order) {
    PlanStep step;
    step.patterns = {j};
    double out;
    if (first) {
      out = st.seed_rows * st.card_seeded[j];
      JoinEstimate est = EstimateJoin(st, rows, bound, j);
      step.join_vars = std::move(est.join_vars);
    } else {
      JoinEstimate est = EstimateJoin(st, rows, bound, j);
      out = est.out_rows;
      step.join_vars = std::move(est.join_vars);
    }
    auto [op, step_cost] = ChooseOperator(rows, st.card_unseeded[j], out,
                                          !step.join_vars.empty());
    step.op = op;
    step.est_rows = out;
    cost += step_cost;
    rows = std::max(out, 1.0);
    for (VarId v : st.vars[j]) bound.insert(v);
    steps.push_back(std::move(step));
    first = false;
  }
  *total_cost = cost;
  return steps;
}

// Exhaustive left-deep dynamic program over join orders (n ≤
// kMaxDpPatterns). State = subset of joined patterns; transition = join
// one more pattern with the cheaper of probe / merge.
std::vector<PlanStep> DpSteps(const PlanStats& st, double* total_cost) {
  const size_t n = st.n;
  const size_t full = (size_t{1} << n) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> cost(full + 1, kInf);
  std::vector<double> rows(full + 1, 0.0);
  std::vector<uint16_t> last(full + 1, 0);
  std::vector<PlanOp> op(full + 1, PlanOp::kProbeJoin);
  cost[0] = 0.0;
  rows[0] = st.seed_rows;

  // Bound variables of a subset (seed vars plus member pattern vars).
  auto bound_of = [&](size_t mask) {
    std::set<VarId> bound(st.seed_vars.begin(), st.seed_vars.end());
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) {
        bound.insert(st.vars[i].begin(), st.vars[i].end());
      }
    }
    return bound;
  };

  for (size_t mask = 1; mask <= full; ++mask) {
    for (size_t j = 0; j < n; ++j) {
      if (!(mask & (size_t{1} << j))) continue;
      size_t prev = mask ^ (size_t{1} << j);
      if (cost[prev] == kInf) continue;
      std::set<VarId> bound = bound_of(prev);
      JoinEstimate est = EstimateJoin(st, rows[prev], bound, j);
      double out = prev == 0 ? st.seed_rows * st.card_seeded[j] : est.out_rows;
      auto [step_op, step_cost] = ChooseOperator(
          rows[prev], st.card_unseeded[j], out, !est.join_vars.empty());
      double total = cost[prev] + step_cost;
      if (total < cost[mask]) {
        cost[mask] = total;
        rows[mask] = std::max(out, 1.0);
        last[mask] = static_cast<uint16_t>(j);
        op[mask] = step_op;
      }
    }
  }

  // Reconstruct the winning order, then rebuild the steps front-to-back
  // so join_vars / estimates are stored per step.
  std::vector<size_t> order;
  for (size_t mask = full; mask != 0; mask ^= size_t{1} << last[mask]) {
    order.push_back(last[mask]);
  }
  std::reverse(order.begin(), order.end());

  std::vector<PlanStep> steps;
  steps.reserve(n);
  std::set<VarId> bound(st.seed_vars.begin(), st.seed_vars.end());
  double r = st.seed_rows;
  size_t mask = 0;
  for (size_t j : order) {
    JoinEstimate est = EstimateJoin(st, r, bound, j);
    double out = mask == 0 ? st.seed_rows * st.card_seeded[j] : est.out_rows;
    mask |= size_t{1} << j;
    PlanStep step;
    step.op = op[mask];
    step.patterns = {j};
    step.join_vars = std::move(est.join_vars);
    step.est_rows = out;
    steps.push_back(std::move(step));
    r = std::max(out, 1.0);
    bound.insert(st.vars[j].begin(), st.vars[j].end());
  }
  *total_cost = cost[full];
  return steps;
}

// Collapses runs of ≥2 consecutive merge joins keyed on the same single
// variable into one leapfrog-style k-way intersection. The collapse
// condition guarantees the grouped patterns pairwise share only that
// variable (any other shared var would have appeared in the later step's
// join key).
void CollapseLeapfrog(std::vector<PlanStep>* steps) {
  std::vector<PlanStep> out;
  out.reserve(steps->size());
  size_t i = 0;
  while (i < steps->size()) {
    PlanStep& s = (*steps)[i];
    if (s.op == PlanOp::kMergeJoin && s.join_vars.size() == 1) {
      size_t j = i + 1;
      while (j < steps->size() && (*steps)[j].op == PlanOp::kMergeJoin &&
             (*steps)[j].join_vars == s.join_vars) {
        ++j;
      }
      if (j - i >= 2) {
        PlanStep group;
        group.op = PlanOp::kLeapfrogJoin;
        group.join_vars = s.join_vars;
        for (size_t k = i; k < j; ++k) {
          group.patterns.push_back((*steps)[k].patterns[0]);
        }
        group.est_rows = (*steps)[j - 1].est_rows;
        out.push_back(std::move(group));
        i = j;
        continue;
      }
    }
    out.push_back(std::move(s));
    ++i;
  }
  *steps = std::move(out);
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

// One intermediate tuple: the binding plus the index of the seed row it
// grew from (the major component of the canonical emission order).
struct Row {
  Binding b;
  uint32_t seed;
};

// Extends rows [lo, hi) of `in` through `tp` by index probes, appending
// to `out` in input order. Returns scanned candidate count.
size_t ProbeRange(const GraphSnapshot& graph, const TriplePattern& tp,
                  const std::vector<Row>& in, size_t lo, size_t hi,
                  std::vector<Row>* out, EvalBudget* budget) {
  size_t scanned = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (budget != nullptr && budget->exceeded()) break;
    const Row& row = in[i];
    graph.Match(MatchKey(tp.s, row.b), MatchKey(tp.p, row.b),
                MatchKey(tp.o, row.b), [&](const Triple& t) {
                  ++scanned;
                  if (budget != nullptr && budget->Charge(1)) return false;
                  Row extended{row.b, row.seed};
                  if (ExtendWithTriple(tp, t, &extended.b)) {
                    out->push_back(std::move(extended));
                  }
                  return true;
                });
  }
  return scanned;
}

// Index nested-loop step, seed-chunk parallel above the serial floor.
// Chunks concatenate in order, so output order is thread-count invariant.
std::vector<Row> ExecuteProbe(const GraphSnapshot& graph, const TriplePattern& tp,
                              const std::vector<Row>& in,
                              const EvalOptions& options, size_t* scanned) {
  std::vector<Row> out;
  if (options.threads > 1 && in.size() >= kMinRowsForParallelProbe) {
    size_t chunks =
        std::min(options.threads, in.size() / (kMinRowsForParallelProbe / 2));
    chunks = std::max<size_t>(chunks, 1);
    size_t per_chunk = (in.size() + chunks - 1) / chunks;
    std::vector<std::vector<Row>> parts(chunks);
    std::vector<size_t> part_scans(chunks, 0);
    ThreadPool::Global().ParallelFor(chunks, options.threads, [&](size_t c) {
      size_t lo = c * per_chunk;
      size_t hi = std::min(in.size(), lo + per_chunk);
      part_scans[c] =
          ProbeRange(graph, tp, in, lo, hi, &parts[c], options.budget);
    });
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.reserve(total);
    for (size_t c = 0; c < chunks; ++c) {
      *scanned += part_scans[c];
      std::move(parts[c].begin(), parts[c].end(), std::back_inserter(out));
    }
  } else {
    *scanned += ProbeRange(graph, tp, in, 0, in.size(), &out, options.budget);
  }
  return out;
}

// A materialized pattern extension entry: the pattern-only binding plus
// its join-key values.
struct ExtEntry {
  std::vector<TermId> key;
  Binding b;
};

// Materializes ⟦tp⟧ and extracts the join key of every solution.
std::vector<ExtEntry> MaterializeExtension(const GraphSnapshot& graph,
                                           const TriplePattern& tp,
                                           const std::vector<VarId>& join_vars,
                                           size_t* scanned,
                                           EvalBudget* budget) {
  std::vector<ExtEntry> ext;
  graph.Match(tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey(),
              [&](const Triple& t) {
                ++*scanned;
                if (budget != nullptr && budget->Charge(1)) return false;
                Binding b;
                if (!ExtendWithTriple(tp, t, &b)) return true;
                ExtEntry e;
                e.b = std::move(b);
                e.key.reserve(join_vars.size());
                bool ok = true;
                for (VarId v : join_vars) {
                  auto bound = e.b.Get(v);
                  if (!bound) {
                    ok = false;
                    break;
                  }
                  e.key.push_back(*bound);
                }
                if (ok) ext.push_back(std::move(e));
                return true;
              });
  return ext;
}

// Sorted merge join of the intermediate with one pattern extension.
// Rows missing a join-var value (heterogeneous seed domains) fall back to
// per-row index probes — always correct, never taken on the homogeneous
// seeds the evaluator produces.
std::vector<Row> ExecuteMerge(const GraphSnapshot& graph, const TriplePattern& tp,
                              const std::vector<VarId>& join_vars,
                              const std::vector<Row>& in, size_t* scanned,
                              EvalBudget* budget) {
  std::vector<Row> out;
  std::vector<ExtEntry> ext =
      MaterializeExtension(graph, tp, join_vars, scanned, budget);

  if (join_vars.empty()) {
    // Cross product, row-major.
    out.reserve(in.size() * ext.size());
    for (const Row& row : in) {
      if (budget != nullptr && budget->exceeded()) break;
      for (const ExtEntry& e : ext) {
        auto merged = Binding::Merge(row.b, e.b);
        if (merged) out.push_back(Row{std::move(*merged), row.seed});
      }
    }
    return out;
  }

  std::stable_sort(ext.begin(), ext.end(),
                   [](const ExtEntry& a, const ExtEntry& b) {
                     return a.key < b.key;
                   });

  // Key every input row; rows lacking a join var probe individually.
  std::vector<std::pair<std::vector<TermId>, size_t>> keyed;
  keyed.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    std::vector<TermId> key;
    key.reserve(join_vars.size());
    bool ok = true;
    for (VarId v : join_vars) {
      auto val = in[i].b.Get(v);
      if (!val) {
        ok = false;
        break;
      }
      key.push_back(*val);
    }
    if (ok) {
      keyed.emplace_back(std::move(key), i);
    } else {
      *scanned += ProbeRange(graph, tp, in, i, i + 1, &out, budget);
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Two-pointer merge over the sorted sides with block products.
  size_t ri = 0, ei = 0;
  while (ri < keyed.size() && ei < ext.size()) {
    if (budget != nullptr && budget->exceeded()) break;
    const std::vector<TermId>& rk = keyed[ri].first;
    if (rk < ext[ei].key) {
      ++ri;
    } else if (ext[ei].key < rk) {
      ++ei;
    } else {
      size_t re = ri;
      while (re < keyed.size() && keyed[re].first == rk) ++re;
      size_t ee = ei;
      while (ee < ext.size() && ext[ee].key == rk) ++ee;
      for (size_t r = ri; r < re; ++r) {
        const Row& row = in[keyed[r].second];
        for (size_t e = ei; e < ee; ++e) {
          auto merged = Binding::Merge(row.b, ext[e].b);
          if (merged) out.push_back(Row{std::move(*merged), row.seed});
        }
      }
      ri = re;
      ei = ee;
    }
  }
  return out;
}

// Leapfrog-style multiway intersection on a single shared variable:
// intersect the sorted key sets of all pattern extensions (and the
// intermediate) first, then emit per-key products only for surviving
// keys. Grouped patterns pairwise share only the intersection variable
// (guaranteed by CollapseLeapfrog).
std::vector<Row> ExecuteLeapfrog(const GraphSnapshot& graph,
                                 const std::vector<TriplePattern>& patterns,
                                 const PlanStep& step,
                                 const std::vector<Row>& in, size_t* scanned,
                                 EvalBudget* budget) {
  VarId v = step.join_vars[0];
  std::vector<VarId> key_vars = {v};

  // Materialize each grouped pattern, bucketed by the key value.
  struct Grouped {
    std::unordered_map<TermId, std::vector<Binding>> buckets;
    std::vector<TermId> keys;  // sorted unique
  };
  std::vector<Grouped> rels(step.patterns.size());
  for (size_t g = 0; g < step.patterns.size(); ++g) {
    std::vector<ExtEntry> ext = MaterializeExtension(
        graph, patterns[step.patterns[g]], key_vars, scanned, budget);
    for (ExtEntry& e : ext) {
      rels[g].buckets[e.key[0]].push_back(std::move(e.b));
    }
    rels[g].keys.reserve(rels[g].buckets.size());
    for (const auto& [k, _] : rels[g].buckets) rels[g].keys.push_back(k);
    std::sort(rels[g].keys.begin(), rels[g].keys.end());
  }

  // Bucket the intermediate rows; rows lacking the var fall back to
  // sequential probes through the grouped patterns.
  std::vector<Row> out;
  std::unordered_map<TermId, std::vector<size_t>> row_buckets;
  std::vector<size_t> fallback;
  for (size_t i = 0; i < in.size(); ++i) {
    auto val = in[i].b.Get(v);
    if (val) {
      row_buckets[*val].push_back(i);
    } else {
      fallback.push_back(i);
    }
  }
  if (!fallback.empty()) {
    std::vector<Row> cur;
    cur.reserve(fallback.size());
    for (size_t i : fallback) cur.push_back(in[i]);
    for (size_t pi : step.patterns) {
      std::vector<Row> next;
      *scanned +=
          ProbeRange(graph, patterns[pi], cur, 0, cur.size(), &next, budget);
      cur = std::move(next);
      if (cur.empty()) break;
    }
    std::move(cur.begin(), cur.end(), std::back_inserter(out));
  }

  // Galloping intersection seeded from the smallest relation's key list.
  size_t smallest = 0;
  for (size_t g = 1; g < rels.size(); ++g) {
    if (rels[g].keys.size() < rels[smallest].keys.size()) smallest = g;
  }
  for (TermId key : rels[smallest].keys) {
    if (budget != nullptr && budget->exceeded()) break;
    auto rb = row_buckets.find(key);
    if (rb == row_buckets.end()) continue;
    bool everywhere = true;
    for (size_t g = 0; g < rels.size(); ++g) {
      if (g == smallest) continue;
      if (rels[g].buckets.find(key) == rels[g].buckets.end()) {
        everywhere = false;
        break;
      }
    }
    if (!everywhere) continue;
    // Per-key product: rows × ext_1 × ... × ext_k, depth-first in group
    // pattern order. Order is irrelevant here — the canonical sort at the
    // end of ExecutePlan restores the probe-engine emission order.
    for (size_t ri : rb->second) {
      std::vector<Row> partial = {in[ri]};
      for (size_t g = 0; g < rels.size() && !partial.empty(); ++g) {
        const std::vector<Binding>& bucket = rels[g].buckets.at(key);
        std::vector<Row> next;
        next.reserve(partial.size() * bucket.size());
        for (const Row& row : partial) {
          for (const Binding& b : bucket) {
            auto merged = Binding::Merge(row.b, b);
            if (merged) next.push_back(Row{std::move(*merged), row.seed});
          }
        }
        partial = std::move(next);
      }
      std::move(partial.begin(), partial.end(), std::back_inserter(out));
    }
  }
  return out;
}

}  // namespace

const char* ToString(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kProbeJoin:
      return "probe";
    case PlanOp::kMergeJoin:
      return "merge";
    case PlanOp::kLeapfrogJoin:
      return "leapfrog";
  }
  return "?";
}

std::vector<size_t> OrderPatternsGreedy(
    const GraphSnapshot& graph, const std::vector<TriplePattern>& patterns,
    const BindingSet& seeds) {
  if (patterns.empty()) return {};
  if (patterns.size() == 1) return {0};
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::set<VarId> bound;
  if (!seeds.empty()) {
    for (const auto& [var, term] : seeds.front().entries()) bound.insert(var);
  }
  // Per-pattern cardinalities depend only on the seeds, not on which
  // patterns were picked earlier — compute each once, sampling up to
  // three seeds (first / middle / last) and taking the median, so one
  // unrepresentative seed cannot pick a bad order.
  std::vector<size_t> samples = SampleSeedIndices(seeds.size());
  std::vector<size_t> estimates(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    estimates[i] = SeededCardinality(graph, patterns[i], seeds, samples);
  }
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = patterns.size();
    size_t best_unbound = SIZE_MAX;
    size_t best_estimate = SIZE_MAX;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      const TriplePattern& tp = patterns[i];
      size_t unbound = 0;
      for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
        if (pt->is_var() && bound.find(pt->var()) == bound.end()) ++unbound;
      }
      if (unbound < best_unbound ||
          (unbound == best_unbound && estimates[i] < best_estimate)) {
        best = i;
        best_unbound = unbound;
        best_estimate = estimates[i];
      }
    }
    order.push_back(best);
    used[best] = true;
    for (VarId v : patterns[best].Vars()) bound.insert(v);
  }
  return order;
}

QueryPlan PlanBgp(const GraphSnapshot& graph,
                  const std::vector<TriplePattern>& patterns,
                  const BindingSet& seed, const EvalOptions& options) {
  QueryPlan plan;
  plan.patterns = patterns;
  if (patterns.empty()) return plan;

  if (options.reorder_patterns) {
    plan.probe_order = OrderPatternsGreedy(graph, patterns, seed);
  } else {
    plan.probe_order.resize(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) plan.probe_order[i] = i;
  }

  PlanStats st = ComputeStats(graph, patterns, seed);

  if (!options.reorder_patterns) {
    // Textual order (reordering ablated): keep the user's order, still
    // choosing the physical operator per step.
    plan.steps = StepsForOrder(st, plan.probe_order, &plan.est_cost);
  } else if (patterns.size() <= kMaxDpPatterns && patterns.size() >= 2) {
    plan.steps = DpSteps(st, &plan.est_cost);
    plan.used_dp = true;
    DpPlanCounter().Increment();
  } else {
    plan.steps = StepsForOrder(st, plan.probe_order, &plan.est_cost);
    if (patterns.size() > kMaxDpPatterns) FallbackCounter().Increment();
  }

  CollapseLeapfrog(&plan.steps);

  // A scan label for a probe over the trivial seed reads better in
  // EXPLAIN and matches the operator catalog.
  if (!plan.steps.empty() && plan.steps[0].op == PlanOp::kProbeJoin &&
      seed.size() <= 1 && (seed.empty() || seed.front().empty())) {
    plan.steps[0].op = PlanOp::kScan;
  }

  // When the executed sequence is the probe engine's own order with only
  // probe/scan steps, the output is already canonical — no restore sort.
  plan.canonical_order = true;
  if (plan.steps.size() != plan.probe_order.size()) {
    plan.canonical_order = false;
  } else {
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& s = plan.steps[i];
      bool probe_like =
          s.op == PlanOp::kProbeJoin || s.op == PlanOp::kScan;
      if (!probe_like || s.patterns.size() != 1 ||
          s.patterns[0] != plan.probe_order[i]) {
        plan.canonical_order = false;
        break;
      }
    }
  }
  return plan;
}

BindingSet ExecutePlan(const GraphSnapshot& graph, QueryPlan* plan, BindingSet seed,
                       const EvalOptions& options) {
  if (plan->patterns.empty() || seed.empty()) return seed;

  std::vector<Row> rows;
  rows.reserve(seed.size());
  for (size_t i = 0; i < seed.size(); ++i) {
    rows.push_back(Row{std::move(seed[i]), static_cast<uint32_t>(i)});
  }

  size_t scanned_total = 0;
  size_t produced_total = 0;
  for (PlanStep& step : plan->steps) {
    if (options.budget != nullptr && options.budget->exceeded()) break;
    size_t scanned = 0;
    std::vector<Row> next;
    switch (step.op) {
      case PlanOp::kScan:
      case PlanOp::kProbeJoin:
        next = ExecuteProbe(graph, plan->patterns[step.patterns[0]], rows,
                            options, &scanned);
        ProbeJoinCounter().Increment();
        break;
      case PlanOp::kMergeJoin:
        next = ExecuteMerge(graph, plan->patterns[step.patterns[0]],
                            step.join_vars, rows, &scanned, options.budget);
        MergeJoinCounter().Increment();
        break;
      case PlanOp::kLeapfrogJoin:
        next = ExecuteLeapfrog(graph, plan->patterns, step, rows, &scanned,
                               options.budget);
        LeapfrogJoinCounter().Increment();
        break;
    }
    step.scanned = scanned;
    step.actual_rows = next.size();
    scanned_total += scanned;
    produced_total += next.size();
    rows = std::move(next);
    if (rows.empty()) break;
  }
  PatternMatchCounter().Add(scanned_total);
  BindingCounter().Add(produced_total);

  if (!plan->canonical_order && rows.size() > 1) {
    // Restore the probe engine's emission order. A full binding uniquely
    // determines the triple each pattern matched; the probe engine emits
    // in lexicographic (seed row, insertion position of pattern
    // probe_order[0]'s triple, position of probe_order[1]'s, ...) order,
    // so that key — recovered via Graph::PositionOf — sorts any
    // execution order back to byte-identical output.
    const size_t stride = plan->probe_order.size() + 1;
    std::vector<uint64_t> keys(rows.size() * stride);
    for (size_t i = 0; i < rows.size(); ++i) {
      uint64_t* key = keys.data() + i * stride;
      key[0] = rows[i].seed;
      for (size_t k = 0; k < plan->probe_order.size(); ++k) {
        Triple t =
            SubstituteTriple(plan->patterns[plan->probe_order[k]], rows[i].b);
        key[k + 1] = graph.PositionOf(t).value_or(UINT32_MAX);
      }
    }
    std::vector<uint32_t> idx(rows.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
    std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t* ka = keys.data() + size_t{a} * stride;
      const uint64_t* kb = keys.data() + size_t{b} * stride;
      return std::lexicographical_compare(ka, ka + stride, kb, kb + stride);
    });
    BindingSet out;
    out.reserve(rows.size());
    for (uint32_t i : idx) out.push_back(std::move(rows[i].b));
    return out;
  }

  BindingSet out;
  out.reserve(rows.size());
  for (Row& row : rows) out.push_back(std::move(row.b));
  return out;
}

std::vector<size_t> PlanJoinOrder(const std::vector<TriplePattern>& patterns,
                                  const std::vector<size_t>& cardinalities) {
  const size_t n = patterns.size();
  if (n <= 1) {
    return n == 0 ? std::vector<size_t>{} : std::vector<size_t>{0};
  }

  if (n > kMaxDpPatterns) {
    // Selectivity sort (the historical federator order).
    FallbackCounter().Increment();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cardinalities[a] < cardinalities[b];
    });
    return order;
  }

  // Same DP as PlanBgp with probe-only costing and no graph statistics:
  // the only distinct-value bound available for a join var is each side's
  // relation size.
  PlanStats st;
  st.n = n;
  st.seed_rows = 1.0;
  st.card_unseeded.reserve(n);
  st.card_seeded.reserve(n);
  st.vars.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double c = static_cast<double>(std::max<size_t>(1, cardinalities[i]));
    st.card_unseeded.push_back(c);
    st.card_seeded.push_back(c);
    st.vars.push_back(patterns[i].Vars());
    for (VarId v : st.vars.back()) {
      auto [it, inserted] = st.d_graph.try_emplace(v, c);
      if (!inserted) it->second = std::min(it->second, c);
    }
  }
  double cost = 0.0;
  std::vector<PlanStep> steps = DpSteps(st, &cost);
  DpPlanCounter().Increment();
  std::vector<size_t> order;
  order.reserve(n);
  for (const PlanStep& s : steps) {
    for (size_t p : s.patterns) order.push_back(p);
  }
  return order;
}

std::string RenderPlan(const QueryPlan& plan, const Dictionary* dict,
                       const VarPool* vars) {
  std::ostringstream os;
  os << "plan: " << (plan.used_dp ? "dp" : "greedy") << " order, est cost "
     << static_cast<long long>(plan.est_cost)
     << (plan.canonical_order ? " (native canonical order)"
                              : " (canonical restore sort)")
     << "\n";
  auto render_pattern = [&](size_t i) {
    if (dict != nullptr && vars != nullptr) {
      return ToString(plan.patterns[i], *dict, *vars);
    }
    std::ostringstream p;
    p << "t" << i;
    return p.str();
  };
  auto render_var = [&](VarId v) {
    std::ostringstream s;
    if (vars != nullptr) {
      s << "?" << vars->name(v);
    } else {
      s << "?v" << v;
    }
    return s.str();
  };
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    os << "  step " << (i + 1) << ": " << ToString(s.op) << " ";
    for (size_t k = 0; k < s.patterns.size(); ++k) {
      if (k > 0) os << " & ";
      os << "[" << render_pattern(s.patterns[k]) << "]";
    }
    if (!s.join_vars.empty()) {
      os << " on ";
      for (size_t k = 0; k < s.join_vars.size(); ++k) {
        if (k > 0) os << ",";
        os << render_var(s.join_vars[k]);
      }
    }
    os << "  est " << static_cast<long long>(s.est_rows) << " rows, actual "
       << s.actual_rows << ", scanned " << s.scanned << "\n";
  }
  return os.str();
}

}  // namespace rps
