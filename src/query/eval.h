#ifndef RPS_QUERY_EVAL_H_
#define RPS_QUERY_EVAL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "query/binding.h"
#include "query/query.h"
#include "rdf/graph.h"

namespace rps {

struct QueryPlan;  // query/plan.h

/// Which query semantics to apply when projecting answers (§2.1):
/// * kDropBlanks  — Q_D: tuples containing blank nodes are dropped
///   (blank nodes behave like labelled nulls; only full information is
///   returned). This is the certain-answer-compatible semantics.
/// * kKeepBlanks  — Q*_D: tuples may contain blank nodes. Used internally
///   by the equivalence-mapping semantics (Definition 2, item 3).
enum class QuerySemantics {
  kDropBlanks,
  kKeepBlanks,
};

/// A per-query, internally synchronized slot for the executed plan that
/// EXPLAIN renders. The owner (one EXPLAIN invocation) allocates a
/// PlanCapture on its own stack/frame and points EvalOptions at it, so
/// two queries explaining concurrently each publish into their own slot
/// — there is no shared global to stomp. Within one query, evaluation
/// may run several BGPs (e.g. a chase step per mapping); the slot keeps
/// the most recently published plan, and the internal mutex makes even
/// racy publishes from parallel sub-evaluations well-defined.
class PlanCapture {
 public:
  PlanCapture();
  ~PlanCapture();
  PlanCapture(const PlanCapture&) = delete;
  PlanCapture& operator=(const PlanCapture&) = delete;

  /// Publishes a plan (replacing any previous one).
  void Publish(QueryPlan plan);

  /// True once a plan has been published.
  bool has_plan() const;

  /// Moves the captured plan out; default-constructed plan if none.
  QueryPlan Take();

 private:
  mutable std::mutex mu_;
  std::unique_ptr<QueryPlan> plan_;
};

/// A per-query execution budget, shared by every thread evaluating one
/// query (and never shared across queries): an optional wall-clock
/// deadline and an optional cap on scanned candidate rows. Evaluation
/// charges one unit per candidate row it inspects; once either limit
/// trips, the exceeded flag is sticky and every evaluation loop unwinds
/// at its next check, returning the (sound but possibly incomplete)
/// answers produced so far. Deadline checks amortize the clock read to
/// one per kCheckIntervalRows charged rows.
class EvalBudget {
 public:
  /// deadline_ms <= 0 means no deadline; max_scanned == 0 means no cap.
  explicit EvalBudget(double deadline_ms = 0.0, size_t max_scanned = 0)
      : max_scanned_(max_scanned) {
    if (deadline_ms > 0.0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(deadline_ms));
    }
  }

  /// Charges `rows` scanned candidates. Returns true when the budget is
  /// (now or already) exceeded — callers stop scanning at that point.
  bool Charge(size_t rows) {
    if (exceeded_.load(std::memory_order_relaxed)) return true;
    size_t before = scanned_.fetch_add(rows, std::memory_order_relaxed);
    size_t total = before + rows;
    if (max_scanned_ != 0 && total > max_scanned_) {
      exceeded_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ &&
        total / kCheckIntervalRows != before / kCheckIntervalRows) {
      if (std::chrono::steady_clock::now() >= deadline_) {
        exceeded_.store(true, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  bool exceeded() const { return exceeded_.load(std::memory_order_relaxed); }
  size_t scanned() const { return scanned_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kCheckIntervalRows = 256;

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  size_t max_scanned_ = 0;
  std::atomic<size_t> scanned_{0};
  std::atomic<bool> exceeded_{false};
};

/// Evaluation options.
/// Whether the planner may pick the worst-case-optimal (leapfrog
/// triejoin) operator for cyclic / star BGPs (PlanOp::kWcojJoin).
/// kAuto lets the cost model decide; kOff restricts planning to the
/// binary-join operators; kForce takes the WCOJ path whenever the query
/// shape is eligible (>= 3 patterns sharing variables over a trivial
/// seed) regardless of cost — results are byte-identical in all modes.
enum class WcojMode { kAuto, kOff, kForce };

struct EvalOptions {
  /// Reorder triple patterns greedily by estimated selectivity before
  /// joining (ablation: §5 of DESIGN.md). Evaluation results are
  /// order-independent; this only affects cost.
  bool reorder_patterns = true;
  /// Maximum threads used by seed-partitioned join extension
  /// (ExtendBindings): the seed set is split into contiguous chunks that
  /// are extended concurrently against the (read-only) graph and
  /// concatenated in chunk order, so the result is byte-identical to the
  /// serial evaluation for any value. 1 disables parallelism.
  size_t threads = 1;
  /// Evaluate BGP joins through the cost-based plan engine (query/plan.h):
  /// DP join ordering plus merge/leapfrog operators, with the output
  /// restored to the probe engine's canonical emission order — results are
  /// byte-identical either way. false forces the historical per-binding
  /// index nested-loop probe engine (the reference oracle in tests).
  bool use_plan = true;
  /// When non-null, the last executed BGP plan (with actual cardinalities
  /// filled in) is published here for EXPLAIN rendering. The slot is
  /// per-query-owned and internally locked, so concurrent EXPLAINs (and
  /// parallel sub-evaluations within one query) cannot stomp each other.
  PlanCapture* plan_capture = nullptr;
  /// When non-null, the per-query budget (deadline / scan cap) charged by
  /// every evaluation loop. Owned by the query's caller; shared by all
  /// threads of that one query only.
  EvalBudget* budget = nullptr;
  /// Worst-case-optimal join selection policy (see WcojMode above).
  WcojMode wcoj = WcojMode::kAuto;
};

/// An answer tuple: the head variables' values in head order.
using Tuple = std::vector<TermId>;

/// ⟦t⟧_D for a single triple pattern: all µ with dom(µ) = var(t) and
/// µ(t) ∈ D.
///
/// All read-path entry points take a GraphSnapshot — a frozen (graph,
/// epoch) view. A `const Graph&` converts implicitly, capturing "now",
/// so single-threaded callers are unchanged; concurrent servers pass one
/// explicit snapshot per query so every pattern of that query sees the
/// same database state while ingest proceeds (snapshot isolation).
BindingSet EvalTriplePattern(const GraphSnapshot& graph,
                             const TriplePattern& tp);

/// ⟦GP⟧_D (Definition 1): iterated join of the triple-pattern evaluations.
/// Implemented as an index nested-loop join seeded by the most selective
/// pattern (when options.reorder_patterns), extending partial bindings via
/// indexed Match calls.
BindingSet EvalGraphPattern(const GraphSnapshot& graph, const GraphPattern& gp,
                            const EvalOptions& options = EvalOptions());

/// Extends every binding of `seed` over `patterns` (index nested-loop
/// join against `graph`). Building block for delta-driven evaluation:
/// seed with the bindings of one pattern against a delta and join the
/// rest against the full graph.
BindingSet ExtendBindings(const GraphSnapshot& graph,
                          const std::vector<TriplePattern>& patterns,
                          BindingSet seed,
                          const EvalOptions& options = EvalOptions());

/// Matches a triple pattern against one concrete triple; returns the
/// induced binding or nullopt (constant mismatch / inconsistent repeated
/// variables).
std::optional<Binding> MatchTriple(const TriplePattern& tp, const Triple& t);

/// Q_D or Q*_D: evaluates the body and projects the head, deduplicating
/// tuples. With kDropBlanks, any tuple binding a head variable to a blank
/// node is discarded.
std::vector<Tuple> EvalQuery(const GraphSnapshot& graph,
                             const GraphPatternQuery& q,
                             QuerySemantics semantics,
                             const EvalOptions& options = EvalOptions());

/// Boolean evaluation: true iff the body has at least one solution whose
/// head projection satisfies `semantics`. For arity-0 queries this is plain
/// ASK.
bool EvalBoolean(const GraphSnapshot& graph, const GraphPatternQuery& q,
                 QuerySemantics semantics = QuerySemantics::kDropBlanks,
                 const EvalOptions& options = EvalOptions());

/// Sorts tuples lexicographically (by TermId) for deterministic output.
void SortTuples(std::vector<Tuple>* tuples);

}  // namespace rps

#endif  // RPS_QUERY_EVAL_H_
