#ifndef RPS_QUERY_EVAL_H_
#define RPS_QUERY_EVAL_H_

#include <vector>

#include "query/binding.h"
#include "query/query.h"
#include "rdf/graph.h"

namespace rps {

struct QueryPlan;  // query/plan.h

/// Which query semantics to apply when projecting answers (§2.1):
/// * kDropBlanks  — Q_D: tuples containing blank nodes are dropped
///   (blank nodes behave like labelled nulls; only full information is
///   returned). This is the certain-answer-compatible semantics.
/// * kKeepBlanks  — Q*_D: tuples may contain blank nodes. Used internally
///   by the equivalence-mapping semantics (Definition 2, item 3).
enum class QuerySemantics {
  kDropBlanks,
  kKeepBlanks,
};

/// Evaluation options.
struct EvalOptions {
  /// Reorder triple patterns greedily by estimated selectivity before
  /// joining (ablation: §5 of DESIGN.md). Evaluation results are
  /// order-independent; this only affects cost.
  bool reorder_patterns = true;
  /// Maximum threads used by seed-partitioned join extension
  /// (ExtendBindings): the seed set is split into contiguous chunks that
  /// are extended concurrently against the (read-only) graph and
  /// concatenated in chunk order, so the result is byte-identical to the
  /// serial evaluation for any value. 1 disables parallelism.
  size_t threads = 1;
  /// Evaluate BGP joins through the cost-based plan engine (query/plan.h):
  /// DP join ordering plus merge/leapfrog operators, with the output
  /// restored to the probe engine's canonical emission order — results are
  /// byte-identical either way. false forces the historical per-binding
  /// index nested-loop probe engine (the reference oracle in tests).
  bool use_plan = true;
  /// When non-null, the last executed BGP plan (with actual cardinalities
  /// filled in) is copied here for EXPLAIN rendering. Leave null on
  /// parallel paths that would race on the capture slot.
  QueryPlan* plan_capture = nullptr;
};

/// An answer tuple: the head variables' values in head order.
using Tuple = std::vector<TermId>;

/// ⟦t⟧_D for a single triple pattern: all µ with dom(µ) = var(t) and
/// µ(t) ∈ D.
BindingSet EvalTriplePattern(const Graph& graph, const TriplePattern& tp);

/// ⟦GP⟧_D (Definition 1): iterated join of the triple-pattern evaluations.
/// Implemented as an index nested-loop join seeded by the most selective
/// pattern (when options.reorder_patterns), extending partial bindings via
/// indexed Match calls.
BindingSet EvalGraphPattern(const Graph& graph, const GraphPattern& gp,
                            const EvalOptions& options = EvalOptions());

/// Extends every binding of `seed` over `patterns` (index nested-loop
/// join against `graph`). Building block for delta-driven evaluation:
/// seed with the bindings of one pattern against a delta and join the
/// rest against the full graph.
BindingSet ExtendBindings(const Graph& graph,
                          const std::vector<TriplePattern>& patterns,
                          BindingSet seed,
                          const EvalOptions& options = EvalOptions());

/// Matches a triple pattern against one concrete triple; returns the
/// induced binding or nullopt (constant mismatch / inconsistent repeated
/// variables).
std::optional<Binding> MatchTriple(const TriplePattern& tp, const Triple& t);

/// Q_D or Q*_D: evaluates the body and projects the head, deduplicating
/// tuples. With kDropBlanks, any tuple binding a head variable to a blank
/// node is discarded.
std::vector<Tuple> EvalQuery(const Graph& graph, const GraphPatternQuery& q,
                             QuerySemantics semantics,
                             const EvalOptions& options = EvalOptions());

/// Boolean evaluation: true iff the body has at least one solution whose
/// head projection satisfies `semantics`. For arity-0 queries this is plain
/// ASK.
bool EvalBoolean(const Graph& graph, const GraphPatternQuery& q,
                 QuerySemantics semantics = QuerySemantics::kDropBlanks,
                 const EvalOptions& options = EvalOptions());

/// Sorts tuples lexicographically (by TermId) for deterministic output.
void SortTuples(std::vector<Tuple>* tuples);

}  // namespace rps

#endif  // RPS_QUERY_EVAL_H_
