#include "query/algebra.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace rps {

namespace {

// Tries to interpret a literal as a number (xsd:integer / xsd:decimal /
// plain numeric lexical form).
std::optional<double> AsNumber(const Term& term) {
  if (!term.is_literal()) return std::nullopt;
  const std::string& dt = term.datatype();
  bool numeric_type = dt.empty() ||
                      dt == "http://www.w3.org/2001/XMLSchema#integer" ||
                      dt == "http://www.w3.org/2001/XMLSchema#decimal" ||
                      dt == "http://www.w3.org/2001/XMLSchema#double";
  if (!numeric_type) return std::nullopt;
  const std::string& lex = term.lexical();
  if (lex.empty()) return std::nullopt;
  char* end = nullptr;
  double value = std::strtod(lex.c_str(), &end);
  if (end != lex.c_str() + lex.size()) return std::nullopt;
  return value;
}

// Three-way comparison of two terms: numeric when both are numeric
// literals, otherwise the Term total order.
int CompareTerms(const Term& a, const Term& b) {
  std::optional<double> na = AsNumber(a);
  std::optional<double> nb = AsNumber(b);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

}  // namespace

bool EvalFilter(const FilterCondition& filter, const Binding& binding,
                const Dictionary& dict) {
  std::optional<TermId> lhs = binding.Get(filter.lhs);

  switch (filter.op) {
    case FilterCondition::Op::kBound:
      return lhs.has_value();
    case FilterCondition::Op::kNotBound:
      return !lhs.has_value();
    case FilterCondition::Op::kIsIri:
      return lhs.has_value() && dict.IsIri(*lhs);
    case FilterCondition::Op::kIsLiteral:
      return lhs.has_value() && dict.IsLiteral(*lhs);
    case FilterCondition::Op::kIsBlank:
      return lhs.has_value() && dict.IsBlank(*lhs);
    default:
      break;
  }

  // Binary comparison: SPARQL error semantics on unbound operands.
  if (!lhs.has_value()) return false;
  TermId rhs_id;
  if (filter.rhs.is_var()) {
    std::optional<TermId> rhs = binding.Get(filter.rhs.var());
    if (!rhs.has_value()) return false;
    rhs_id = *rhs;
  } else {
    rhs_id = filter.rhs.term();
  }

  int cmp = CompareTerms(dict.term(*lhs), dict.term(rhs_id));
  switch (filter.op) {
    case FilterCondition::Op::kEq:
      return cmp == 0;
    case FilterCondition::Op::kNe:
      return cmp != 0;
    case FilterCondition::Op::kLt:
      return cmp < 0;
    case FilterCondition::Op::kLe:
      return cmp <= 0;
    case FilterCondition::Op::kGt:
      return cmp > 0;
    case FilterCondition::Op::kGe:
      return cmp >= 0;
    default:
      return false;  // unary ops handled above
  }
}

BindingSet LeftJoin(const BindingSet& left, const BindingSet& right) {
  BindingSet out;
  for (const Binding& l : left) {
    bool matched = false;
    for (const Binding& r : right) {
      std::optional<Binding> merged = Binding::Merge(l, r);
      if (merged.has_value()) {
        out.push_back(std::move(*merged));
        matched = true;
      }
    }
    if (!matched) out.push_back(l);
  }
  return out;
}

std::vector<PartialTuple> EvalExtendedQuery(const GraphSnapshot& graph,
                                            const ExtendedQuery& query,
                                            QuerySemantics semantics,
                                            const EvalOptions& options) {
  const Dictionary& dict = *graph.dict();

  BindingSet current = EvalGraphPattern(graph, query.required, options);
  for (const GraphPattern& optional : query.optionals) {
    BindingSet side = EvalGraphPattern(graph, optional, options);
    current = LeftJoin(current, side);
  }
  if (!query.filters.empty()) {
    BindingSet filtered;
    for (Binding& b : current) {
      bool keep = true;
      for (const FilterCondition& filter : query.filters) {
        if (!EvalFilter(filter, b, dict)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(std::move(b));
    }
    current = std::move(filtered);
  }

  // Project, deduplicate, sort.
  std::set<PartialTuple> rows;
  for (const Binding& b : current) {
    PartialTuple row;
    row.reserve(query.head.size());
    bool keep = true;
    for (VarId v : query.head) {
      std::optional<TermId> value = b.Get(v);
      if (value.has_value() && semantics == QuerySemantics::kDropBlanks &&
          dict.IsBlank(*value)) {
        keep = false;
        break;
      }
      row.push_back(value);
    }
    if (keep) rows.insert(std::move(row));
  }
  return std::vector<PartialTuple>(rows.begin(), rows.end());
}

std::string FormatPartialTuple(const PartialTuple& row,
                               const Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += "\t";
    out += row[i].has_value() ? dict.ToString(*row[i]) : "-";
  }
  return out;
}

}  // namespace rps
