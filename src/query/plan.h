#ifndef RPS_QUERY_PLAN_H_
#define RPS_QUERY_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/binding.h"
#include "query/pattern.h"
#include "rdf/graph.h"

namespace rps {

struct EvalOptions;  // query/eval.h (eval.h includes this header)

/// Physical operator of one plan step (docs/QUERY_PLANNING.md has the
/// full operator catalog and the cost formulas that choose between
/// them).
enum class PlanOp {
  /// Leaf range scan of one pattern over the permuted indexes; the
  /// first step of a plan whose input is the trivial seed {µ∅}.
  kScan,
  /// Index nested-loop step: for every row of the running intermediate,
  /// probe the graph with the pattern's constants plus the row's bound
  /// values. The historical engine is a plan of only these steps.
  kProbeJoin,
  /// Sorted merge join: materialize the pattern's extension once, sort
  /// both sides by the shared variables, merge. Wins when the running
  /// intermediate is large relative to the pattern's extension.
  kMergeJoin,
  /// Multiway leapfrog-style intersection: ≥2 consecutive merge joins
  /// on the same single variable collapsed into one k-way sorted
  /// intersection — keys are intersected across all relations before
  /// any per-key product is emitted.
  kLeapfrogJoin,
  /// Worst-case-optimal join (leapfrog triejoin): a single step covering
  /// the whole BGP. Phase A leapfrogs the shared ("core") variables over
  /// the three-tier trie view of the permuted runs (rdf/trie_iterator.h)
  /// without materializing any bucket; phase B expands to full answers
  /// through the canonical probe pipeline, pruning rows inconsistent
  /// with the core — output is natively in canonical emission order.
  kWcojJoin,
};

/// Short lowercase operator name ("scan", "probe", "merge", "leapfrog",
/// "wcoj").
const char* ToString(PlanOp op);

/// One step of a left-deep plan: joins `patterns` (one pattern, or
/// several for a leapfrog group) into the running intermediate result.
struct PlanStep {
  PlanOp op = PlanOp::kProbeJoin;
  /// Indices into the planned pattern list joined at this step.
  std::vector<size_t> patterns;
  /// Join key: variables shared between the running intermediate and
  /// the step's patterns. Empty = cross product.
  std::vector<VarId> join_vars;
  /// Planner's estimate of the intermediate cardinality after this step.
  double est_rows = 0.0;
  /// Filled in by execution: the actual intermediate cardinality.
  size_t actual_rows = 0;
  /// Filled in by execution: candidate triples scanned by this step.
  size_t scanned = 0;
};

/// A complete plan for one BGP join, produced by PlanBgp and executed by
/// ExecutePlan. The plan is explicit so EXPLAIN can render it with
/// estimated vs. actual cardinalities.
struct QueryPlan {
  /// The planned patterns (copied so the plan is self-describing for
  /// EXPLAIN rendering after the query objects are gone).
  std::vector<TriplePattern> patterns;
  /// Execution steps in order; steps[0] consumes the seed relation.
  std::vector<PlanStep> steps;
  /// True when the join order came from the dynamic program; false for
  /// the greedy fallback (> kMaxDpPatterns patterns) or textual order
  /// (reorder_patterns off).
  bool used_dp = false;
  /// The reference probe engine's pattern order (greedy, multi-seed
  /// sampled). Execution restores this engine's emission order, so
  /// results are byte-identical to the probe engine regardless of the
  /// plan's own join order.
  std::vector<size_t> probe_order;
  /// True when the executed step sequence already emits in the probe
  /// engine's order (all probe joins, in probe_order) and the canonical
  /// restoration sort was skipped.
  bool canonical_order = false;
  /// Planner's total cost of the chosen plan (unitless; see the cost
  /// model in docs/QUERY_PLANNING.md).
  double est_cost = 0.0;
};

/// DP search is exhaustive up to this many patterns (2^n subset states);
/// larger BGPs fall back to the greedy order with per-step operator
/// selection and bump `query.plan.fallbacks`.
inline constexpr size_t kMaxDpPatterns = 10;

/// Greedy pattern order (the reference probe engine's order): repeatedly
/// pick the remaining pattern with the fewest unbound positions,
/// tie-broken by exact index cardinality. Per-pattern cardinalities are
/// sampled from up to three seeds (first / middle / last of `seeds`) and
/// combined by median, so one unrepresentative seed cannot pick a bad
/// order.
std::vector<size_t> OrderPatternsGreedy(
    const GraphSnapshot& graph, const std::vector<TriplePattern>& patterns,
    const BindingSet& seeds);

/// Plans the join of `patterns` against `graph` for the given seed
/// relation: exact leaf cardinalities from Graph::EstimateMatches
/// (sampled over up to three seeds), System-R-style dynamic programming
/// over join orders, and per-step probe/merge operator choice. The seed
/// set itself is only consulted for its size and sample values. Like the
/// evaluator, the planner reads through a GraphSnapshot (a `const Graph&`
/// converts implicitly), so its statistics are epoch-exact under
/// concurrent ingest.
QueryPlan PlanBgp(const GraphSnapshot& graph,
                  const std::vector<TriplePattern>& patterns,
                  const BindingSet& seed, const EvalOptions& options);

/// Executes `plan` over the seed relation and returns the joined
/// bindings in the probe engine's exact emission order (byte-identical
/// to the per-binding probe loop for any plan). Fills the plan's
/// actual_rows / scanned fields. Probe steps parallelize over seed-row
/// chunks when options.threads > 1; the output is identical for every
/// thread count.
BindingSet ExecutePlan(const GraphSnapshot& graph, QueryPlan* plan,
                       BindingSet seed, const EvalOptions& options);

/// Join order from whole-pattern cardinalities alone (no graph access) —
/// the federator's case, where each pattern's federation-wide extension
/// size is the sum of exact per-peer estimates. Same DP as PlanBgp with
/// probe-only costing; falls back to a selectivity sort above
/// kMaxDpPatterns.
std::vector<size_t> PlanJoinOrder(
    const std::vector<TriplePattern>& patterns,
    const std::vector<size_t>& cardinalities);

/// Per-pattern distinct-value hints for the overload below: upper
/// bounds on the distinct subjects / objects of the pattern's extension
/// (0 = unknown). The federator fills them from the per-predicate
/// distinct statistics (Graph::PredicateDistincts) summed across peers,
/// which tightens the join-selectivity denominators exactly as the
/// local planner's statistics do.
struct JoinOrderHints {
  size_t distinct_s = 0;
  size_t distinct_o = 0;
};

std::vector<size_t> PlanJoinOrder(const std::vector<TriplePattern>& patterns,
                                  const std::vector<size_t>& cardinalities,
                                  const std::vector<JoinOrderHints>& hints);

/// Renders the plan for EXPLAIN: one line per step with operator, join
/// key, patterns, and estimated vs. actual cardinalities. `vars` may be
/// null (variables render as ?v<id>); `dict` may be null (terms render
/// as raw ids).
std::string RenderPlan(const QueryPlan& plan, const Dictionary* dict,
                       const VarPool* vars);

}  // namespace rps

#endif  // RPS_QUERY_PLAN_H_
