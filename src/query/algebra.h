#ifndef RPS_QUERY_ALGEBRA_H_
#define RPS_QUERY_ALGEBRA_H_

#include <optional>
#include <vector>

#include "query/eval.h"

namespace rps {

/// A filter condition from the supported SPARQL FILTER subset:
/// comparisons between a variable and a term or second variable
/// (numeric when both sides are numeric literals, term/string order
/// otherwise), and the unary tests BOUND / isIRI / isLiteral / isBlank.
struct FilterCondition {
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kBound,
    kNotBound,
    kIsIri,
    kIsLiteral,
    kIsBlank,
  };
  Op op = Op::kEq;
  VarId lhs = 0;
  /// Right-hand side for binary comparisons; ignored for unary tests.
  PatternTerm rhs;
};

/// Evaluates a filter under a binding. SPARQL error semantics: a
/// comparison over an unbound variable evaluates to false (the solution
/// is discarded), except for kNotBound which is true exactly when the
/// variable is unbound.
bool EvalFilter(const FilterCondition& filter, const Binding& binding,
                const Dictionary& dict);

/// An extended graph pattern query (§5 item 2 of the paper: "larger
/// subsets of SPARQL"): a required BGP, a sequence of OPTIONAL BGPs
/// (applied as left joins, in order), and FILTER conditions (applied
/// last). An empty head means ASK.
struct ExtendedQuery {
  std::vector<VarId> head;
  GraphPattern required;
  std::vector<GraphPattern> optionals;
  std::vector<FilterCondition> filters;
};

/// A projected row that may leave OPTIONAL-only variables unbound.
using PartialTuple = std::vector<std::optional<TermId>>;

/// The left (outer) join Ω1 ⟕ Ω2: compatible merges, plus the left
/// bindings with no compatible partner.
BindingSet LeftJoin(const BindingSet& left, const BindingSet& right);

/// Evaluates the extended query over a graph: required BGP, then each
/// OPTIONAL via left join, then filters; projects the head (deduplicated;
/// with kDropBlanks, *bound* blank values discard the row — unbound stays
/// unbound).
///
/// Certain-answer caveat: OPTIONAL and NOT-BOUND are non-monotone, so
/// evaluating them over a universal solution yields the answers *of that
/// solution*, not certain answers in the Definition 3 sense; the
/// conjunctive core (required + filters without kNotBound) remains
/// certain. This matches the paper's positioning of larger SPARQL
/// fragments as future work beyond the formal development.
std::vector<PartialTuple> EvalExtendedQuery(
    const GraphSnapshot& graph, const ExtendedQuery& query,
    QuerySemantics semantics, const EvalOptions& options = EvalOptions());

/// Renders a partial tuple row ("<iri>", "-" for unbound) for display.
std::string FormatPartialTuple(const PartialTuple& row,
                               const Dictionary& dict);

}  // namespace rps

#endif  // RPS_QUERY_ALGEBRA_H_
