#include "query/answer_cache.h"

#include <cstring>

namespace rps {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

// Canonical id of one pattern term under the first-occurrence variable
// renaming: variables get even codes 2*rank, constants odd codes
// 2*TermId+1 — disjoint ranges, so a renamed variable can never collide
// with a constant in the serialized key.
uint32_t CanonicalTermCode(const PatternTerm& t,
                           std::unordered_map<VarId, uint32_t>* rename) {
  if (t.is_var()) {
    auto it = rename->emplace(t.var(), static_cast<uint32_t>(rename->size()));
    return 2u * it.first->second;
  }
  return 2u * t.term() + 1u;
}

size_t EstimateEntryBytes(const std::string& key,
                          const QueryFootprintSet& footprint,
                          const AnswerCache::Answers& answers) {
  size_t bytes = key.size() + footprint.size() * sizeof(PatternFootprint) +
                 sizeof(std::vector<Tuple>);
  if (answers) {
    bytes += answers->size() * sizeof(Tuple);
    for (const Tuple& t : *answers) bytes += t.size() * sizeof(TermId);
  }
  return bytes;
}

}  // namespace

std::string CanonicalQueryKey(const GraphPatternQuery& query,
                              QuerySemantics semantics) {
  std::unordered_map<VarId, uint32_t> rename;
  rename.reserve(query.head.size() + 3 * query.body.size());
  std::string key;
  key.reserve(1 + 4 * (1 + query.head.size() + 3 * query.body.size()));
  key.push_back(semantics == QuerySemantics::kDropBlanks ? 'D' : 'K');
  AppendU32(&key, static_cast<uint32_t>(query.head.size()));
  for (VarId v : query.head) {
    AppendU32(&key, CanonicalTermCode(PatternTerm::Var(v), &rename));
  }
  for (const TriplePattern& tp : query.body.patterns()) {
    AppendU32(&key, CanonicalTermCode(tp.s, &rename));
    AppendU32(&key, CanonicalTermCode(tp.p, &rename));
    AppendU32(&key, CanonicalTermCode(tp.o, &rename));
  }
  return key;
}

QueryFootprintSet QueryFootprint(const GraphPatternQuery& query) {
  QueryFootprintSet footprint;
  footprint.reserve(query.body.size());
  for (const TriplePattern& tp : query.body.patterns()) {
    footprint.push_back(
        {tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey()});
  }
  return footprint;
}

bool FootprintTouches(const QueryFootprintSet& footprint, const Triple& t) {
  for (const PatternFootprint& f : footprint) {
    if (f.s && *f.s != t.s) continue;
    if (f.p && *f.p != t.p) continue;
    if (f.o && *f.o != t.o) continue;
    return true;
  }
  return false;
}

AnswerCache::AnswerCache(const AnswerCacheOptions& options, std::string label,
                         size_t initial_epoch)
    : options_(options), label_(std::move(label)),
      known_epoch_(initial_epoch) {
  obs::Registry& reg = obs::Registry::Global();
  hits_total_ = reg.counter("cache.hits");
  hits_labeled_ = reg.counter(obs::WithLabel("cache.hits", label_));
  misses_total_ = reg.counter("cache.misses");
  misses_labeled_ = reg.counter(obs::WithLabel("cache.misses", label_));
  invalidations_total_ = reg.counter("cache.invalidations");
  invalidations_labeled_ =
      reg.counter(obs::WithLabel("cache.invalidations", label_));
  evictions_total_ = reg.counter("cache.evictions");
  evictions_labeled_ = reg.counter(obs::WithLabel("cache.evictions", label_));
  bytes_total_ = reg.gauge("cache.bytes");
  bytes_labeled_ = reg.gauge(obs::WithLabel("cache.bytes", label_));
}

AnswerCache::~AnswerCache() {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_total_->Add(-static_cast<int64_t>(bytes_));
  bytes_labeled_->Add(-static_cast<int64_t>(bytes_));
}

AnswerCache::Answers AnswerCache::Lookup(const std::string& key,
                                         size_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.epoch > epoch ||
      epoch > known_epoch_) {
    ++stats_.misses;
    misses_total_->Add(1);
    misses_labeled_->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  hits_total_->Add(1);
  hits_labeled_->Add(1);
  return it->second.answers;
}

void AnswerCache::Insert(std::string key, size_t eval_epoch,
                         QueryFootprintSet footprint, Answers answers) {
  if (!answers) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A delta may have landed after this evaluation's snapshot without
  // being checked against this footprint — the result could be stale at
  // known_epoch_, so refuse it. (Deliberately no known_epoch_ advance on
  // the eval_epoch > known_epoch_ side: see the class comment.)
  if (eval_epoch < known_epoch_) return;
  size_t bytes = EstimateEntryBytes(key, footprint, answers);
  if (options_.max_entry_bytes != 0 && bytes > options_.max_entry_bytes) {
    return;
  }
  EraseLocked(key, /*counts_as_invalidation=*/false);
  lru_.push_front(key);
  Entry entry;
  entry.epoch = eval_epoch;
  entry.footprint = std::move(footprint);
  entry.answers = std::move(answers);
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  for (const PatternFootprint& f : entry.footprint) {
    if (!f.p) {
      entry.wildcard_predicate = true;
      break;
    }
  }
  IndexLocked(lru_.front(), entry);
  bytes_ += bytes;
  bytes_total_->Add(static_cast<int64_t>(bytes));
  bytes_labeled_->Add(static_cast<int64_t>(bytes));
  entries_.emplace(std::move(key), std::move(entry));
  EvictToBudgetLocked();
}

void AnswerCache::ApplyDelta(const std::vector<Triple>& delta,
                             size_t new_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<std::string> doomed;
  for (const Triple& t : delta) {
    auto bucket = by_predicate_.find(t.p);
    if (bucket != by_predicate_.end()) {
      for (const std::string& key : bucket->second) {
        if (doomed.count(key)) continue;
        if (FootprintTouches(entries_.at(key).footprint, t)) {
          doomed.insert(key);
        }
      }
    }
    for (const std::string& key : wildcard_keys_) {
      if (doomed.count(key)) continue;
      if (FootprintTouches(entries_.at(key).footprint, t)) {
        doomed.insert(key);
      }
    }
  }
  for (const std::string& key : doomed) {
    EraseLocked(key, /*counts_as_invalidation=*/true);
  }
  // Surviving entries are promoted wholesale: their footprints are
  // disjoint from the delta, so their answers are unchanged at new_epoch.
  if (new_epoch > known_epoch_) known_epoch_ = new_epoch;
}

void AnswerCache::Clear(size_t new_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& kv : entries_) keys.push_back(kv.first);
  for (const std::string& key : keys) {
    EraseLocked(key, /*counts_as_invalidation=*/true);
  }
  if (new_epoch > known_epoch_) known_epoch_ = new_epoch;
}

size_t AnswerCache::known_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return known_epoch_;
}

AnswerCacheStats AnswerCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AnswerCacheStats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

void AnswerCache::EraseLocked(const std::string& key,
                              bool counts_as_invalidation) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  UnindexLocked(key, it->second);
  bytes_ -= it->second.bytes;
  bytes_total_->Add(-static_cast<int64_t>(it->second.bytes));
  bytes_labeled_->Add(-static_cast<int64_t>(it->second.bytes));
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  if (counts_as_invalidation) {
    ++stats_.invalidations;
    invalidations_total_->Add(1);
    invalidations_labeled_->Add(1);
  }
}

void AnswerCache::EvictToBudgetLocked() {
  while (!lru_.empty() &&
         ((options_.max_entries != 0 &&
           entries_.size() > options_.max_entries) ||
          (options_.max_bytes != 0 && bytes_ > options_.max_bytes))) {
    std::string victim = lru_.back();
    EraseLocked(victim, /*counts_as_invalidation=*/false);
    ++stats_.evictions;
    evictions_total_->Add(1);
    evictions_labeled_->Add(1);
  }
}

void AnswerCache::IndexLocked(const std::string& key, const Entry& entry) {
  if (entry.wildcard_predicate) {
    wildcard_keys_.insert(key);
    return;
  }
  for (const PatternFootprint& f : entry.footprint) {
    by_predicate_[*f.p].insert(key);
  }
}

void AnswerCache::UnindexLocked(const std::string& key, const Entry& entry) {
  if (entry.wildcard_predicate) {
    wildcard_keys_.erase(key);
    return;
  }
  for (const PatternFootprint& f : entry.footprint) {
    auto it = by_predicate_.find(*f.p);
    if (it == by_predicate_.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) by_predicate_.erase(it);
  }
}

}  // namespace rps
