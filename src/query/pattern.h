#ifndef RPS_QUERY_PATTERN_H_
#define RPS_QUERY_PATTERN_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

namespace rps {

/// Dense handle for an interned query variable name.
using VarId = uint32_t;

/// Interning table for variable names (the set V of the paper). One pool
/// is shared per RPS / workbench so that VarIds are comparable across
/// queries and mappings.
class VarPool {
 public:
  VarPool() = default;
  VarPool(const VarPool&) = delete;
  VarPool& operator=(const VarPool&) = delete;

  /// Interns a variable name (without the leading '?').
  VarId Intern(const std::string& name);

  /// Mints a fresh variable with a unique name of the form `<prefix><n>`.
  VarId Fresh(const std::string& prefix = "v");

  const std::string& name(VarId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> index_;
  uint64_t next_fresh_ = 0;
};

/// One element of a triple pattern: either a variable or a constant term.
class PatternTerm {
 public:
  PatternTerm() : is_var_(false), id_(kInvalidTermId) {}

  static PatternTerm Var(VarId v) {
    PatternTerm t;
    t.is_var_ = true;
    t.id_ = v;
    return t;
  }
  static PatternTerm Const(TermId c) {
    PatternTerm t;
    t.is_var_ = false;
    t.id_ = c;
    return t;
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }
  VarId var() const { return id_; }
  TermId term() const { return id_; }

  /// As a match key: the constant if const, else wildcard.
  std::optional<TermId> AsMatchKey() const {
    if (is_var_) return std::nullopt;
    return id_;
  }

  friend bool operator==(const PatternTerm& a, const PatternTerm& b) {
    return a.is_var_ == b.is_var_ && a.id_ == b.id_;
  }
  friend bool operator!=(const PatternTerm& a, const PatternTerm& b) {
    return !(a == b);
  }
  friend bool operator<(const PatternTerm& a, const PatternTerm& b) {
    if (a.is_var_ != b.is_var_) return a.is_var_ < b.is_var_;
    return a.id_ < b.id_;
  }

 private:
  bool is_var_;
  uint32_t id_;  // VarId or TermId depending on is_var_
};

/// A triple pattern from (I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V).
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  /// Variables of this pattern, in s,p,o order without duplicates.
  std::vector<VarId> Vars() const;

  friend bool operator==(const TriplePattern& a, const TriplePattern& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const TriplePattern& a, const TriplePattern& b) {
    if (!(a.s == b.s)) return a.s < b.s;
    if (!(a.p == b.p)) return a.p < b.p;
    return a.o < b.o;
  }
};

/// A conjunctive graph pattern (GP1 AND ... AND GPn). The paper defines
/// graph patterns recursively with a binary AND; since AND is associative
/// and commutative under the join semantics of Definition 1, we keep the
/// flattened list of triple patterns (the BGP).
class GraphPattern {
 public:
  GraphPattern() = default;
  explicit GraphPattern(std::vector<TriplePattern> patterns)
      : patterns_(std::move(patterns)) {}

  void Add(const TriplePattern& tp) { patterns_.push_back(tp); }

  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// var(GP): all variables appearing in the pattern (sorted, unique).
  std::set<VarId> Vars() const;

  friend bool operator==(const GraphPattern& a, const GraphPattern& b) {
    return a.patterns_ == b.patterns_;
  }

 private:
  std::vector<TriplePattern> patterns_;
};

/// Renders a pattern term / triple pattern for debugging, using `?name`
/// for variables.
std::string ToString(const PatternTerm& t, const Dictionary& dict,
                     const VarPool& vars);
std::string ToString(const TriplePattern& tp, const Dictionary& dict,
                     const VarPool& vars);
std::string ToString(const GraphPattern& gp, const Dictionary& dict,
                     const VarPool& vars);

}  // namespace rps

#endif  // RPS_QUERY_PATTERN_H_
